"""Tests of the profiling workflow and its CLI/API surfaces."""

import pytest

from repro.hw import TPUV4
from repro.models import get_model


@pytest.fixture(scope="module")
def report():
    from repro.obs.profile import profile_block

    return profile_block(get_model("gpt3-175b"), 8, 16, TPUV4)


class TestProfileBlock:
    def test_matches_best_block_run(self, report):
        from repro.experiments.common import best_block_run

        block = best_block_run(
            "meshslice", get_model("gpt3-175b"), 8, 16, TPUV4
        )
        assert report.mesh == block.mesh.shape
        assert report.block_seconds == pytest.approx(block.seconds)
        assert report.flop_utilization == pytest.approx(
            block.utilization(TPUV4)
        )
        assert len(report.per_pass) == len(block.results)

    def test_aggregate_consistent_with_passes(self, report):
        assert report.metrics.makespan == pytest.approx(report.block_seconds)
        assert report.metrics.compute_seconds == pytest.approx(
            sum(m.compute_seconds for _label, m in report.per_pass)
        )
        assert 0.0 < report.metrics.overlap_fraction <= 1.0

    def test_cache_hit_rates_bounded(self, report):
        assert report.cache_hit_rates
        for rate in report.cache_hit_rates.values():
            assert 0.0 <= rate <= 1.0

    def test_render_mentions_everything(self, report):
        text = report.render()
        assert "gpt3-175b" in text
        assert "FLOP utilization" in text
        assert "overlap fraction" in text
        assert "comm breakdown" in text
        assert "core" in text
        assert "hit rate" in text

    def test_unsupported_point_returns_none(self):
        from repro.obs.profile import profile_block

        # Cannon needs a square mesh: 32 chips has none.
        result = profile_block(
            get_model("gpt3-175b"), 8, 32, TPUV4, algorithm="cannon"
        )
        assert result is None


class TestPublicApi:
    def test_simulate_attaches_metrics(self, hw):
        from repro import simulate
        from repro.obs.derive import RunMetrics
        from repro.sim import ProgramBuilder

        builder = ProgramBuilder(hw)
        builder.gemm("g", 1024, 1024, 1024)
        result = simulate(builder.build(), hw)
        assert isinstance(result.metrics, RunMetrics)
        assert result.metrics.makespan == pytest.approx(result.makespan)

    def test_top_level_exports(self):
        import repro

        assert repro.RunMetrics is not None
        assert repro.ProfileReport is not None
        assert repro.MetricsRegistry is not None
        assert callable(repro.profile_block)
        for name in (
            "RunMetrics", "ProfileReport", "MetricsRegistry", "profile_block"
        ):
            assert name in repro.__all__

    def test_obs_package_lazy_exports(self):
        import repro.obs as obs

        assert set(obs._LAZY_EXPORTS) <= set(obs.__all__)
        assert obs.derive_run_metrics is not None
        with pytest.raises(AttributeError):
            obs.not_a_real_name


class TestCli:
    def test_profile_command(self, capsys):
        from repro.cli import main

        assert main(["profile", "gpt3-175b", "--chips", "16",
                     "--batch", "8"]) == 0
        out = capsys.readouterr().out
        assert "FLOP utilization" in out
        assert "overlap fraction" in out
        assert "hit rate" in out

    def test_profile_requires_model(self, capsys):
        from repro.cli import main

        assert main(["profile"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_profile_unknown_model(self, capsys):
        from repro.cli import main

        assert main(["profile", "no-such-model"]) == 2

    def test_profile_unsupported_algorithm_point(self, capsys):
        from repro.cli import main

        code = main(["profile", "gpt3-175b", "--chips", "32",
                     "--batch", "8", "--algorithm", "cannon"])
        assert code == 2
        assert "cannot run" in capsys.readouterr().err

    def test_profile_writes_metrics_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.export import read_jsonl

        out = tmp_path / "m.jsonl"
        assert main(["profile", "gpt3-175b", "--chips", "16",
                     "--batch", "8", "--metrics", str(out)]) == 0
        records = read_jsonl(str(out))
        names = {r["name"] for r in records}
        assert "run.overlap_fraction" in names
        assert any(n.startswith("cache.") for n in names)

    def test_tune_writes_metrics_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.export import read_jsonl

        out = tmp_path / "m.jsonl"
        assert main(["tune", "gpt3-175b", "--chips", "16",
                     "--batch", "8", "--metrics", str(out)]) == 0
        names = {r["name"] for r in read_jsonl(str(out))}
        assert "tuner.runs" in names

    def test_failed_command_writes_no_metrics(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "m.jsonl"
        assert main(["profile", "no-such-model",
                     "--metrics", str(out)]) == 2
        assert not out.exists()

    def test_profile_is_a_command_not_an_experiment(self):
        from repro.cli import normalize_argv

        assert normalize_argv(["profile", "x"]) == ["profile", "x"]
        assert normalize_argv(["fig9"]) == ["run", "fig9"]
