"""Tests for trace aggregation and timeline rendering."""

import pytest

from repro.sim import CORE, LINK_H, Span, Trace, ascii_timeline
from repro.sim.trace import CommBreakdown, ZERO_BREAKDOWN


def span(aid, kind, start, end, exclusive=(), meta=None):
    return Span(
        aid=aid, label=f"s{aid}", kind=kind, start=start, end=end,
        exclusive=tuple(exclusive), meta=meta or {},
    )


class TestCommBreakdown:
    def test_sums_components(self):
        spans = [
            span(0, "comm", 0, 1, meta={"launch": 0.1, "transfer": 0.7, "sync": 0.2}),
            span(1, "comm", 1, 2, meta={"launch": 0.2, "transfer": 0.5, "sync": 0.3}),
            span(2, "compute", 0, 5),
        ]
        bd = Trace.from_spans(spans).breakdown()
        assert bd.launch == pytest.approx(0.3)
        assert bd.transfer == pytest.approx(1.2)
        assert bd.sync == pytest.approx(0.5)
        assert bd.total == pytest.approx(2.0)

    def test_ignores_non_comm(self):
        trace = Trace.from_spans([span(0, "compute", 0, 1)])
        assert trace.breakdown() == ZERO_BREAKDOWN

    def test_relative(self):
        bd = CommBreakdown(1.0, 2.0, 3.0).relative_to(2.0)
        assert bd.launch == pytest.approx(0.5)
        assert bd.total == pytest.approx(3.0)

    def test_relative_rejects_zero(self):
        with pytest.raises(ValueError):
            CommBreakdown(1.0, 1.0, 1.0).relative_to(0.0)

    def test_add(self):
        total = CommBreakdown(1, 2, 3) + CommBreakdown(4, 5, 6)
        assert (total.launch, total.transfer, total.sync) == (5, 7, 9)


class TestBusyTime:
    def test_merges_overlapping_intervals(self):
        spans = [
            span(0, "compute", 0.0, 2.0, exclusive=[CORE]),
            span(1, "compute", 1.0, 3.0, exclusive=[CORE]),
            span(2, "compute", 5.0, 6.0, exclusive=[CORE]),
        ]
        assert Trace.from_spans(spans).busy_time(CORE) == pytest.approx(4.0)

    def test_ignores_other_resources(self):
        spans = [span(0, "comm", 0.0, 2.0, exclusive=[LINK_H])]
        assert Trace.from_spans(spans).busy_time(CORE) == 0.0

    def test_compute_time(self):
        spans = [
            span(0, "compute", 0, 1),
            span(1, "compute", 2, 4),
            span(2, "comm", 0, 9),
        ]
        assert Trace.from_spans(spans).compute_time() == pytest.approx(3.0)

    def test_kind_durations(self):
        spans = [
            span(0, "compute", 0, 1),
            span(1, "comm", 0, 2),
            span(2, "comm", 2, 3),
        ]
        durations = Trace.from_spans(spans).kind_durations()
        assert durations == {"compute": 1.0, "comm": 3.0}


class TestAsciiTimeline:
    def test_renders_real_program(self, hw):
        from repro.sim import ProgramBuilder

        builder = ProgramBuilder(hw)
        ag = builder.allgather("ag", 4, 50e6, LINK_H)
        builder.gemm("g", 4096, 4096, 4096, deps=[ag])
        spans = builder.build().run()
        art = ascii_timeline(spans, width=60)
        lines = art.splitlines()
        assert any("compute" in line and "#" in line for line in lines)
        assert any("inter-col" in line and "=" in line for line in lines)
        assert "ms" in lines[-1]

    def test_empty(self):
        assert ascii_timeline([]) == "(empty timeline)"

    def test_not_deprecated(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ascii_timeline([span(0, "compute", 0, 1, exclusive=[CORE])])


class TestRemovedDelegates:
    """The six 1.3-deprecated free functions are gone (removed in 1.6)."""

    REMOVED = (
        "comm_breakdown",
        "busy_time",
        "compute_time",
        "kind_durations",
        "to_chrome_trace",
        "write_chrome_trace",
    )

    def test_removed_from_trace_module(self):
        import repro.sim.trace as trace_module

        for name in self.REMOVED:
            assert not hasattr(trace_module, name), name

    def test_removed_from_repro_sim(self):
        import repro.sim as sim

        for name in self.REMOVED:
            assert not hasattr(sim, name), name
            assert name not in sim.__all__, name

    def test_trace_methods_cover_the_removed_surface(self):
        spans = [
            span(0, "compute", 0, 2, exclusive=[CORE]),
            span(
                1, "comm", 0, 1, exclusive=[LINK_H],
                meta={"launch": 0.1, "transfer": 0.7, "sync": 0.2},
            ),
        ]
        trace = Trace.from_spans(spans)
        assert trace.busy_time(CORE) == pytest.approx(2.0)
        assert trace.compute_time() == pytest.approx(2.0)
        assert trace.kind_durations() == {"compute": 2.0, "comm": 1.0}
        assert trace.breakdown().total == pytest.approx(1.0)
        assert trace.to_chrome()


class TestTraceClass:
    """The Trace wrapper over span lists."""

    def _spans(self, hw):
        from repro.sim import ProgramBuilder

        builder = ProgramBuilder(hw)
        ag = builder.allgather("ag", 4, 50e6, LINK_H)
        builder.gemm("g", 2048, 2048, 2048, deps=[ag])
        return builder.build().run()

    def test_from_spans_accepts_iterator(self, hw):
        spans = self._spans(hw)
        trace = Trace.from_spans(iter(spans))
        assert trace.spans == tuple(spans)

    def test_makespan(self, hw):
        spans = self._spans(hw)
        trace = Trace.from_spans(spans)
        assert trace.makespan == max(s.end for s in spans)
        assert Trace.from_spans([]).makespan == 0.0

    def test_write_chrome_roundtrip(self, hw, tmp_path):
        import json

        trace = Trace.from_spans(self._spans(hw))
        path = tmp_path / "trace.json"
        trace.write_chrome(str(path))
        events = json.loads(path.read_text())
        assert events == json.loads(json.dumps(trace.to_chrome()))
        assert any(e["ph"] == "X" for e in events)

    def test_simresult_trace_property(self, hw):
        from repro.sim import ProgramBuilder, simulate

        builder = ProgramBuilder(hw)
        builder.gemm("g", 2048, 2048, 2048)
        result = simulate(builder.build(), hw)
        trace = result.trace
        assert isinstance(trace, Trace)
        assert trace.spans == tuple(result.spans)
        assert trace.breakdown() == result.comm

    def test_busy_time_merges_on_known_spans(self):
        spans = [
            span(0, "compute", 0.0, 2.0, exclusive=[CORE]),
            span(1, "compute", 1.0, 3.0, exclusive=[CORE]),
            span(2, "compute", 2.5, 4.0, exclusive=[CORE]),
            span(3, "compute", 10.0, 11.0, exclusive=[CORE]),
        ]
        assert Trace.from_spans(spans).busy_time(CORE) == pytest.approx(5.0)


class TestCounterEvents:
    """The derived occupancy counter tracks of to_chrome()."""

    def test_occupancy_levels(self):
        spans = [
            span(0, "compute", 0.0, 2.0, exclusive=[CORE]),
            span(1, "compute", 1.0, 3.0, exclusive=[CORE]),
        ]
        events = Trace.from_spans(spans).counter_events()
        assert [e["ph"] for e in events] == ["C"] * len(events)
        levels = [(e["ts"], e["args"]["busy"]) for e in events]
        assert levels == [(0.0, 1), (1e6, 2), (2e6, 1), (3e6, 0)]

    def test_cancelling_transitions_are_skipped(self):
        spans = [
            span(0, "compute", 0.0, 1.0, exclusive=[CORE]),
            span(1, "compute", 1.0, 2.0, exclusive=[CORE]),
        ]
        events = Trace.from_spans(spans).counter_events()
        # back-to-back spans: the shared instant t=1 is no transition
        assert [(e["ts"], e["args"]["busy"]) for e in events] == [
            (0.0, 1),
            (2e6, 0),
        ]

    def test_appended_to_chrome_events(self, hw):
        from repro.sim import ProgramBuilder

        builder = ProgramBuilder(hw)
        ag = builder.allgather("ag", 4, 50e6, LINK_H)
        builder.gemm("g", 2048, 2048, 2048, deps=[ag])
        trace = Trace.from_spans(builder.build().run())
        events = trace.to_chrome()
        counters = [e for e in events if e["ph"] == "C"]
        assert counters == trace.counter_events()
        names = {e["name"] for e in counters}
        assert f"busy:{CORE}" in names
        # counters follow every span/metadata event
        first_counter = events.index(counters[0])
        assert all(
            e["ph"] in ("C",) for e in events[first_counter:]
        )

    def test_empty_trace_has_no_counters(self):
        assert Trace.from_spans([]).counter_events() == []
