"""Tests for trace aggregation and timeline rendering."""

import pytest

from repro.sim import (
    CORE,
    LINK_H,
    Span,
    Trace,
    ascii_timeline,
    busy_time,
    comm_breakdown,
    compute_time,
    kind_durations,
)
from repro.sim.trace import CommBreakdown, ZERO_BREAKDOWN


def span(aid, kind, start, end, exclusive=(), meta=None):
    return Span(
        aid=aid, label=f"s{aid}", kind=kind, start=start, end=end,
        exclusive=tuple(exclusive), meta=meta or {},
    )


class TestCommBreakdown:
    def test_sums_components(self):
        spans = [
            span(0, "comm", 0, 1, meta={"launch": 0.1, "transfer": 0.7, "sync": 0.2}),
            span(1, "comm", 1, 2, meta={"launch": 0.2, "transfer": 0.5, "sync": 0.3}),
            span(2, "compute", 0, 5),
        ]
        bd = comm_breakdown(spans)
        assert bd.launch == pytest.approx(0.3)
        assert bd.transfer == pytest.approx(1.2)
        assert bd.sync == pytest.approx(0.5)
        assert bd.total == pytest.approx(2.0)

    def test_ignores_non_comm(self):
        assert comm_breakdown([span(0, "compute", 0, 1)]) == ZERO_BREAKDOWN

    def test_relative(self):
        bd = CommBreakdown(1.0, 2.0, 3.0).relative_to(2.0)
        assert bd.launch == pytest.approx(0.5)
        assert bd.total == pytest.approx(3.0)

    def test_relative_rejects_zero(self):
        with pytest.raises(ValueError):
            CommBreakdown(1.0, 1.0, 1.0).relative_to(0.0)

    def test_add(self):
        total = CommBreakdown(1, 2, 3) + CommBreakdown(4, 5, 6)
        assert (total.launch, total.transfer, total.sync) == (5, 7, 9)


class TestBusyTime:
    def test_merges_overlapping_intervals(self):
        spans = [
            span(0, "compute", 0.0, 2.0, exclusive=[CORE]),
            span(1, "compute", 1.0, 3.0, exclusive=[CORE]),
            span(2, "compute", 5.0, 6.0, exclusive=[CORE]),
        ]
        assert busy_time(spans, CORE) == pytest.approx(4.0)

    def test_ignores_other_resources(self):
        spans = [span(0, "comm", 0.0, 2.0, exclusive=[LINK_H])]
        assert busy_time(spans, CORE) == 0.0

    def test_compute_time(self):
        spans = [
            span(0, "compute", 0, 1),
            span(1, "compute", 2, 4),
            span(2, "comm", 0, 9),
        ]
        assert compute_time(spans) == pytest.approx(3.0)

    def test_kind_durations(self):
        spans = [
            span(0, "compute", 0, 1),
            span(1, "comm", 0, 2),
            span(2, "comm", 2, 3),
        ]
        durations = kind_durations(spans)
        assert durations == {"compute": 1.0, "comm": 3.0}


class TestAsciiTimeline:
    def test_renders_real_program(self, hw):
        from repro.sim import ProgramBuilder

        builder = ProgramBuilder(hw)
        ag = builder.allgather("ag", 4, 50e6, LINK_H)
        builder.gemm("g", 4096, 4096, 4096, deps=[ag])
        spans = builder.build().run()
        art = ascii_timeline(spans, width=60)
        lines = art.splitlines()
        assert any("compute" in line and "#" in line for line in lines)
        assert any("inter-col" in line and "=" in line for line in lines)
        assert "ms" in lines[-1]

    def test_empty(self):
        assert ascii_timeline([]) == "(empty timeline)"


class TestTraceClass:
    """The Trace wrapper and its module-level delegates agree."""

    def _spans(self, hw):
        from repro.sim import ProgramBuilder

        builder = ProgramBuilder(hw)
        ag = builder.allgather("ag", 4, 50e6, LINK_H)
        builder.gemm("g", 2048, 2048, 2048, deps=[ag])
        return builder.build().run()

    def test_from_spans_accepts_iterator(self, hw):
        spans = self._spans(hw)
        trace = Trace.from_spans(iter(spans))
        assert trace.spans == tuple(spans)

    def test_makespan(self, hw):
        spans = self._spans(hw)
        trace = Trace.from_spans(spans)
        assert trace.makespan == max(s.end for s in spans)
        assert Trace.from_spans([]).makespan == 0.0

    def test_delegates_match_methods(self, hw):
        spans = self._spans(hw)
        trace = Trace.from_spans(spans)
        assert trace.breakdown() == comm_breakdown(spans)
        assert trace.busy_time(CORE) == busy_time(spans, CORE)
        assert trace.compute_time() == compute_time(spans)
        assert trace.kind_durations() == kind_durations(spans)
        assert trace.timeline(width=60) == ascii_timeline(spans, width=60)

    def test_to_chrome_matches_function(self, hw):
        from repro.sim import to_chrome_trace

        spans = self._spans(hw)
        assert Trace.from_spans(spans).to_chrome() == to_chrome_trace(spans)

    def test_write_chrome_roundtrip(self, hw, tmp_path):
        import json

        trace = Trace.from_spans(self._spans(hw))
        path = tmp_path / "trace.json"
        trace.write_chrome(str(path))
        events = json.loads(path.read_text())
        assert events == json.loads(json.dumps(trace.to_chrome()))
        assert any(e["ph"] == "X" for e in events)

    def test_simresult_trace_property(self, hw):
        from repro.sim import ProgramBuilder, simulate

        builder = ProgramBuilder(hw)
        builder.gemm("g", 2048, 2048, 2048)
        result = simulate(builder.build(), hw)
        trace = result.trace
        assert isinstance(trace, Trace)
        assert trace.spans == tuple(result.spans)
        assert trace.breakdown() == result.comm

    def test_busy_time_merges_on_known_spans(self):
        spans = [
            span(0, "compute", 0.0, 2.0, exclusive=[CORE]),
            span(1, "compute", 1.0, 3.0, exclusive=[CORE]),
            span(2, "compute", 2.5, 4.0, exclusive=[CORE]),
            span(3, "compute", 10.0, 11.0, exclusive=[CORE]),
        ]
        assert Trace.from_spans(spans).busy_time(CORE) == pytest.approx(5.0)
