"""Tests for the fault-aware robust tuning mode."""

import pytest

from repro.autotuner import RobustTuningResult, robust_tune, tune
from repro.autotuner.search import _quantile
from repro.faults import FaultSpec
from repro.models import GPT3_175B

SEVERE = FaultSpec(
    stragglers=2,
    straggler_slowdown=2.0,
    degraded_links=4,
    link_slowdown=3.0,
    seed=7,
)


class TestQuantile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _quantile(values, 1.0) == 4.0
        assert _quantile(values, 0.5) == 2.0
        assert _quantile(values, 0.95) == 4.0
        assert _quantile([5.0], 0.95) == 5.0

    def test_order_independent(self):
        assert _quantile([3.0, 1.0, 2.0], 0.95) == 3.0


class TestRobustTune:
    def test_null_spec_degenerates_to_clean_simulation(self, hw):
        result = robust_tune(
            GPT3_175B, 8, 16, hw, spec=FaultSpec(), ensemble=2
        )
        assert isinstance(result, RobustTuningResult)
        assert result.robust_seconds == result.mean_seconds
        assert result.robust_seconds == result.nominal_seconds
        assert result.inflation == 1.0

    def test_reproducible(self, hw):
        a = robust_tune(GPT3_175B, 8, 16, hw, spec=SEVERE, ensemble=4)
        b = robust_tune(GPT3_175B, 8, 16, hw, spec=SEVERE, ensemble=4)
        assert a == b

    def test_faults_inflate_tail(self, hw):
        result = robust_tune(GPT3_175B, 8, 16, hw, spec=SEVERE, ensemble=4)
        assert result.robust_seconds > result.nominal_seconds
        assert result.robust_seconds >= result.mean_seconds
        assert result.inflation > 1.0
        assert result.quantile == 0.95
        assert len(result.fault_plans) == 4
        # Every 16-chip factorization with both dims >= 2 was scored.
        assert set(result.per_mesh_robust) == {(2, 8), (4, 4), (8, 2)}
        assert result.robust_seconds == min(result.per_mesh_robust.values())

    def test_keeps_nominal_slice_tuning(self, hw):
        nominal = tune(GPT3_175B, 8, 16, hw)
        robust = robust_tune(
            GPT3_175B, 8, 16, hw, spec=FaultSpec(), ensemble=1
        )
        by_pass = {
            (t.layer_name, t.plan.pass_name): t.slices
            for t in nominal.passes
        }
        for tuned in robust.passes:
            key = (tuned.layer_name, tuned.plan.pass_name)
            assert tuned.slices == by_pass[key]

    def test_rejects_bad_quantile(self, hw):
        with pytest.raises(ValueError):
            robust_tune(
                GPT3_175B, 8, 16, hw, spec=FaultSpec(), quantile=0.0
            )
        with pytest.raises(ValueError):
            robust_tune(
                GPT3_175B, 8, 16, hw, spec=FaultSpec(), quantile=1.5
            )

    def test_unsupported_algorithm_everywhere_raises(self, hw):
        # Cannon needs a square mesh; 32 chips has no square
        # factorization, so no candidate supports it.
        with pytest.raises(ValueError, match="cannon"):
            robust_tune(
                GPT3_175B, 16, 32, hw, spec=FaultSpec(),
                ensemble=1, algorithm="cannon",
            )

    def test_1d_algorithm_on_ring(self, hw):
        from repro.mesh import Mesh2D

        result = robust_tune(
            GPT3_175B, 8, 16, hw, spec=SEVERE, ensemble=2,
            algorithm="1dtp", mesh_candidates=[Mesh2D(1, 16)],
        )
        assert result.mesh.shape == (1, 16)
        assert result.inflation > 1.0
