"""Unit tests of the metrics registry and the engine wait hooks."""

import threading

import pytest

from repro.obs.hooks import capture_waits, wait_sink
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    GLOBAL_REGISTRY,
    KILL_SWITCH_ENV,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    metrics_enabled,
    registry,
)


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounters:
    def test_accumulate(self, reg):
        reg.inc("c")
        reg.inc("c", 2.5)
        assert reg.counter_value("c") == pytest.approx(3.5)

    def test_labeled_series_independent(self, reg):
        reg.inc("c", labels={"k": "a"})
        reg.inc("c", 5.0, labels={"k": "b"})
        assert reg.counter_value("c", labels={"k": "a"}) == 1.0
        assert reg.counter_value("c", labels={"k": "b"}) == 5.0
        assert reg.counter_value("c") == 0.0

    def test_label_order_is_irrelevant(self, reg):
        reg.inc("c", labels={"a": 1, "b": 2})
        reg.inc("c", labels={"b": 2, "a": 1})
        assert reg.counter_value("c", labels={"b": 2, "a": 1}) == 2.0

    def test_absent_series_reads_zero(self, reg):
        assert reg.counter_value("never") == 0.0


class TestGaugesAndHistograms:
    def test_gauge_last_write_wins(self, reg):
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 7.0)
        [record] = reg.snapshot()
        assert record.type == "gauge"
        assert record.value == 7.0

    def test_histogram_summary(self, reg):
        for value in (1e-6, 2e-6, 0.5):
            reg.observe("h", value)
        [record] = reg.snapshot()
        assert record.type == "histogram"
        assert record.count == 3
        assert record.total == pytest.approx(0.500003)
        assert sum(n for _bound, n in record.buckets) == 3

    def test_histogram_overflow_bucket(self, reg):
        reg.observe("h", 10.0 * DEFAULT_BUCKETS[-1])
        [record] = reg.snapshot()
        assert record.buckets == (("+inf", 1),)

    def test_histogram_bucket_is_upper_inclusive(self, reg):
        reg.observe("h", DEFAULT_BUCKETS[0])
        [record] = reg.snapshot()
        assert record.buckets == ((repr(DEFAULT_BUCKETS[0]), 1),)


class TestSnapshotsAndMerge:
    def test_snapshot_sorted(self, reg):
        reg.set_gauge("z", 1.0)
        reg.inc("b")
        reg.inc("a")
        reg.observe("m", 1.0)
        kinds = [(r.type, r.name) for r in reg.snapshot()]
        assert kinds == sorted(kinds)

    def test_clear(self, reg):
        reg.inc("c")
        reg.observe("h", 1.0)
        reg.clear()
        assert reg.snapshot() == []

    def test_merge_adds_counters_and_histograms(self, reg):
        other = MetricsRegistry()
        for r in (reg, other):
            r.inc("c", 2.0)
            r.observe("h", 1e-3)
        reg.merge_records(other.snapshot())
        assert reg.counter_value("c") == 4.0
        hist = [r for r in reg.snapshot() if r.type == "histogram"][0]
        assert hist.count == 2

    def test_merge_gauge_takes_incoming(self, reg):
        other = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        other.set_gauge("g", 9.0)
        reg.merge_records(other.snapshot())
        [record] = reg.snapshot()
        assert record.value == 9.0

    def test_delta_since(self, reg):
        before = reg.snapshot()
        reg.inc("c", 3.0)
        reg.observe("h", 1e-3)
        delta = reg.delta_since(before)
        assert {(r.type, r.name) for r in delta} == {
            ("counter", "c"),
            ("histogram", "h"),
        }

    def test_delta_omits_unchanged(self, reg):
        reg.inc("stable")
        reg.observe("h", 1.0)
        before = reg.snapshot()
        reg.inc("fresh")
        delta = reg.delta_since(before)
        assert [r.name for r in delta] == ["fresh"]

    def test_delta_subtracts(self, reg):
        reg.inc("c", 10.0)
        before = reg.snapshot()
        reg.inc("c", 2.0)
        [record] = reg.delta_since(before)
        assert record.value == pytest.approx(2.0)

    def test_delta_roundtrips_through_merge(self, reg):
        reg.inc("c", 1.0)
        reg.observe("h", 0.5)
        before = reg.snapshot()
        reg.inc("c", 4.0)
        reg.observe("h", 0.25)
        target = MetricsRegistry()
        target.inc("c", 1.0)
        target.observe("h", 0.5)
        target.merge_records(reg.delta_since(before))
        assert [r.to_record() for r in target.snapshot()] == [
            r.to_record() for r in reg.snapshot()
        ]

    def test_concurrent_increments(self, reg):
        def work():
            for _ in range(500):
                reg.inc("c")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("c") == 2000.0


class TestKillSwitch:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(KILL_SWITCH_ENV, raising=False)
        assert metrics_enabled()
        assert registry() is GLOBAL_REGISTRY

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(KILL_SWITCH_ENV, value)
        assert not metrics_enabled()
        assert registry() is NULL_REGISTRY

    @pytest.mark.parametrize("value", ["0", "false", "off", ""])
    def test_falsy_values_keep_enabled(self, monkeypatch, value):
        monkeypatch.setenv(KILL_SWITCH_ENV, value)
        assert metrics_enabled()

    def test_null_registry_discards_everything(self):
        null = NullRegistry()
        null.inc("c")
        null.set_gauge("g", 1.0)
        null.observe("h", 1.0)
        null.merge_records(
            [r for r in GLOBAL_REGISTRY.snapshot()]
        )
        assert null.snapshot() == []

    def test_shared_null_registry_stays_empty(self, monkeypatch):
        monkeypatch.setenv(KILL_SWITCH_ENV, "1")
        reg = registry()
        reg.inc("c", 100.0)
        reg.observe("h", 1.0)
        assert NULL_REGISTRY.snapshot() == []


class TestWaitHooks:
    def test_no_sink_outside_capture(self):
        assert wait_sink() is None

    def test_capture_collects(self):
        with capture_waits() as waits:
            sink = wait_sink()
            assert sink is waits
            sink.append(("compute", 0.5))
        assert waits == [("compute", 0.5)]
        assert wait_sink() is None

    def test_nested_captures_use_innermost(self):
        with capture_waits() as outer:
            with capture_waits() as inner:
                wait_sink().append(("comm", 1.0))
            wait_sink().append(("compute", 2.0))
        assert inner == [("comm", 1.0)]
        assert outer == [("compute", 2.0)]

    def test_disabled_capture_yields_none(self, monkeypatch):
        monkeypatch.setenv(KILL_SWITCH_ENV, "1")
        with capture_waits() as waits:
            assert waits is None
            assert wait_sink() is None
