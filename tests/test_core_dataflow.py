"""Tests for the GeMM shape and dataflow description helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Dataflow, GeMMShape
from repro.core.dataflow import (
    flowing_bytes,
    operand_shapes,
    sliced_dimension,
    sliced_extent,
)
from repro.hw import TPUV4
from repro.sim import combined_utilization, simulate
from repro.algorithms import GeMMConfig, get_algorithm
from repro.mesh import Mesh2D


class TestGeMMShape:
    def test_flops(self):
        assert GeMMShape(2, 3, 4).flops == 2.0 * 2 * 3 * 4

    def test_byte_sizes(self):
        shape = GeMMShape(10, 20, 30, dtype_bytes=2)
        assert shape.a_bytes == 10 * 30 * 2
        assert shape.b_bytes == 30 * 20 * 2
        assert shape.c_bytes == 10 * 20 * 2
        assert shape.total_bytes == shape.a_bytes + shape.b_bytes + shape.c_bytes

    def test_transposed_swaps_m_n(self):
        shape = GeMMShape(10, 20, 30)
        t = shape.transposed()
        assert (t.m, t.n, t.k) == (20, 10, 30)
        assert t.flops == shape.flops

    def test_as_tuple_and_str(self):
        shape = GeMMShape(1, 2, 3)
        assert shape.as_tuple() == (1, 2, 3)
        assert str(shape) == "(1x2x3)"

    def test_validation(self):
        with pytest.raises(ValueError):
            GeMMShape(0, 1, 1)
        with pytest.raises(ValueError):
            GeMMShape(1, 1, 1, dtype_bytes=0)

    @settings(max_examples=30, deadline=None)
    @given(m=st.integers(1, 999), n=st.integers(1, 999), k=st.integers(1, 999))
    def test_double_transpose_identity(self, m, n, k):
        shape = GeMMShape(m, n, k)
        assert shape.transposed().transposed() == shape


class TestOperandShapes:
    def test_os_stores_plain_operands(self):
        a, b, c = operand_shapes(GeMMShape(10, 20, 30), Dataflow.OS)
        assert a == (10, 30) and b == (30, 20) and c == (10, 20)

    def test_ls_stores_right_transposed(self):
        a, b, c = operand_shapes(GeMMShape(10, 20, 30), Dataflow.LS)
        assert a == (10, 30) and b == (20, 30) and c == (10, 20)

    def test_rs_stores_left_transposed(self):
        a, b, c = operand_shapes(GeMMShape(10, 20, 30), Dataflow.RS)
        assert a == (30, 10) and b == (30, 20) and c == (10, 20)


class TestFlowingBytes:
    def test_os_flows_both_inputs(self):
        shape = GeMMShape(10, 20, 30)
        col, row = flowing_bytes(shape, Dataflow.OS)
        assert col == shape.a_bytes and row == shape.b_bytes

    def test_ls_flows_output_and_right(self):
        shape = GeMMShape(10, 20, 30)
        col, row = flowing_bytes(shape, Dataflow.LS)
        assert col == shape.c_bytes and row == shape.b_bytes

    def test_rs_flows_left_and_output(self):
        shape = GeMMShape(10, 20, 30)
        col, row = flowing_bytes(shape, Dataflow.RS)
        assert col == shape.a_bytes and row == shape.c_bytes


class TestSlicedDimension:
    @pytest.mark.parametrize(
        "dataflow,dim", [(Dataflow.OS, "k"), (Dataflow.LS, "n"), (Dataflow.RS, "m")]
    )
    def test_mapping(self, dataflow, dim):
        assert sliced_dimension(dataflow) == dim

    def test_extent(self):
        shape = GeMMShape(10, 20, 30)
        assert sliced_extent(shape, Dataflow.OS) == 30
        assert sliced_extent(shape, Dataflow.LS) == 20
        assert sliced_extent(shape, Dataflow.RS) == 10


class TestCombinedUtilization:
    def test_aggregates_back_to_back_gemms(self):
        alg = get_algorithm("meshslice")
        results = []
        for n in (8192, 16384):
            cfg = GeMMConfig(
                GeMMShape(16384, n, 8192), Mesh2D(4, 4), Dataflow.OS, slices=4
            )
            results.append(simulate(alg.build_program(cfg, TPUV4), TPUV4))
        combined = combined_utilization(results)
        singles = [r.flop_utilization() for r in results]
        assert min(singles) <= combined <= max(singles)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            combined_utilization([])
