"""One-sided get/put communication: cost model and functional plane.

Mirrors ``tests/test_comm_cost.py`` for the :class:`OneSidedCostModel`
(the defining property under test: zero per-step synchronization, all
sync concentrated in the epoch fence) and pins the functional plane's
shard shape/dtype validation to the same name-the-offending-rank
contract as :mod:`repro.comm.ops`.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import CommCostModel, OneSidedCostModel, ZERO_COST
from repro.comm.onesided import (
    accumulate,
    gather_get,
    get,
    put,
    ring_hops,
)
from repro.faults.sdc import SDCPlan, sdc_injection
from repro.hw import HardwareParams
from repro.mesh.sharding import shard_matrix
from repro.mesh.topology import Mesh2D


@pytest.fixture
def model():
    hw = HardwareParams(
        link_bandwidth=100e9,
        links_per_direction=1,
        t_sync=1e-6,
        t_launch=10e-6,
    )
    return OneSidedCostModel(hw)


class TestRingHops:
    def test_small_rings(self):
        assert ring_hops(1) == 0
        assert ring_hops(2) == 1
        assert ring_hops(3) == 2
        assert ring_hops(4) == 4
        assert ring_hops(5) == 6

    def test_rejects_bad_ring(self):
        with pytest.raises(ValueError):
            ring_hops(0)

    def test_mean_ring_hops(self, model):
        assert model.mean_ring_hops(1) == 0.0
        assert model.mean_ring_hops(4) == pytest.approx(4 / 3)


class TestGetPut:
    def test_get_formula(self, model):
        """cost = t_launch/4 + hops * bytes / bw — and zero sync."""
        cost = model.get(1e6, hops=2)
        hw = model.hw
        expected = hw.t_launch * 0.25 + 2 * 1e6 / hw.ring_bandwidth
        assert cost.total == pytest.approx(expected)
        assert cost.sync == 0.0 and cost.syncs == 0

    def test_put_matches_get(self, model):
        assert model.put(1e6, hops=3) == model.get(1e6, hops=3)

    def test_accumulate_extra_hbm(self, model):
        acc = model.accumulate(1e6)
        assert acc.total == pytest.approx(model.put(1e6).total)
        assert acc.hbm_bytes == pytest.approx(1.5 * model.put(1e6).hbm_bytes)

    def test_zero_message_free(self, model):
        assert model.get(0.0) == ZERO_COST
        assert model.get(1e6, hops=0) == ZERO_COST

    def test_rejects_negative(self, model):
        with pytest.raises(ValueError):
            model.get(-1.0)
        with pytest.raises(ValueError):
            model.put(1.0, hops=-1)


class TestEpoch:
    def test_epoch_formula(self, model):
        """launch = (P-1) * t_post, transfer over min-wrap routes."""
        cost = model.epoch(ring_size=8, shard_bytes=1e6)
        hw = model.hw
        assert cost.launch == pytest.approx(7 * hw.t_launch * 0.25)
        assert cost.transfer == pytest.approx(
            ring_hops(8) * 1e6 / hw.ring_bandwidth
        )
        assert cost.sync == 0.0 and cost.syncs == 0

    def test_epoch_pays_no_per_step_sync(self, model):
        """The defining difference from the ring collectives."""
        two_sided = CommCostModel(model.hw).allgather(8, 1e6)
        one_sided = model.epoch(8, 1e6)
        assert two_sided.syncs == 7
        assert one_sided.syncs == 0

    def test_latency_bound_regime_favors_one_sided(self):
        """Epoch + fence beats AllGather when t_sync dominates."""
        hw = HardwareParams(t_sync=100e-6)
        one_sided = OneSidedCostModel(hw)
        total = (one_sided.epoch(16, 1e3) + one_sided.fence(16)).total
        assert total < CommCostModel(hw).allgather(16, 1e3).total

    def test_single_chip_is_free(self, model):
        assert model.epoch(1, 1e9) == ZERO_COST
        assert model.accumulate_epoch(1, 1e9) == ZERO_COST

    def test_hbm_traffic(self, model):
        assert model.epoch(5, 1e6).hbm_bytes == pytest.approx(2 * 4 * 1e6)
        assert model.accumulate_epoch(5, 1e6).hbm_bytes == pytest.approx(
            3 * 4 * 1e6
        )

    def test_bidirectional_rings_halve_transfer(self):
        uni = OneSidedCostModel(HardwareParams(links_per_direction=1))
        bi = OneSidedCostModel(HardwareParams(links_per_direction=2))
        assert bi.epoch(4, 1e6).transfer == pytest.approx(
            uni.epoch(4, 1e6).transfer / 2
        )

    @given(ring=st.integers(2, 64), bytes_=st.floats(1.0, 1e9))
    @settings(max_examples=30, deadline=None)
    def test_monotonic_in_ring_size(self, ring, bytes_):
        fresh = OneSidedCostModel(HardwareParams())
        assert (
            fresh.epoch(ring + 1, bytes_).total > fresh.epoch(ring, bytes_).total
        )

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.epoch(0, 1.0)
        with pytest.raises(ValueError):
            model.accumulate_epoch(4, -1.0)


class TestFence:
    def test_log_depth_rounds(self, model):
        for participants, rounds in ((2, 1), (4, 2), (5, 3), (16, 4)):
            cost = model.fence(participants)
            assert cost.syncs == rounds == math.ceil(math.log2(participants))
            assert cost.sync == pytest.approx(rounds * model.hw.t_sync)

    def test_single_chip_is_free(self, model):
        assert model.fence(1) == ZERO_COST

    def test_rejects_bad_participants(self, model):
        with pytest.raises(ValueError):
            model.fence(0)


class TestPanel:
    def test_formula(self, model):
        cost = model.panel(pieces=4, piece_bytes=1e6, mean_hops=1.5)
        hw = model.hw
        assert cost.launch == pytest.approx(4 * hw.t_launch * 0.25)
        assert cost.transfer == pytest.approx(
            4e6 * 1.5 / hw.ring_bandwidth
        )
        assert cost.syncs == 0

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.panel(0, 1.0)
        with pytest.raises(ValueError):
            model.panel(1, -1.0)
        with pytest.raises(ValueError):
            model.panel(1, 1.0, mean_hops=-0.5)


class TestFlyweight:
    def test_for_hw_is_shared(self):
        hw = HardwareParams()
        assert OneSidedCostModel.for_hw(hw) is OneSidedCostModel.for_hw(hw)


# ------------------------------------------------------------- functional


@pytest.fixture
def mesh():
    return Mesh2D(2, 2)


@pytest.fixture
def shards(mesh):
    rng = np.random.default_rng(7)
    matrix = rng.standard_normal((8, 8))
    return shard_matrix(matrix, mesh).shards


class TestGetFunctional:
    def test_full_shard_copy(self, shards, mesh):
        window = get(shards, mesh, (0, 1))
        assert np.array_equal(window, shards[(0, 1)])
        window[0, 0] = 999.0  # reader owns its bytes
        assert shards[(0, 1)][0, 0] != 999.0

    def test_windowed_read(self, shards, mesh):
        window = get(shards, mesh, (1, 0), rows=(1, 3), cols=(0, 2))
        assert np.array_equal(window, shards[(1, 0)][1:3, 0:2])

    def test_out_of_bounds_names_rank(self, shards, mesh):
        with pytest.raises(ValueError, match=r"rank \(0, 1\)"):
            get(shards, mesh, (0, 1), rows=(0, 99))

    def test_unknown_rank(self, shards, mesh):
        with pytest.raises(ValueError, match=r"rank \(5, 5\) not in mesh"):
            get(shards, mesh, (5, 5))
        with pytest.raises(ValueError, match=r"rank \(1, 1\) has no shard"):
            get({k: v for k, v in shards.items() if k != (1, 1)}, mesh, (1, 1))


class TestPutAccumulate:
    def test_put_copy_on_write(self, shards, mesh):
        payload = np.full((2, 2), 5.0)
        out = put(shards, mesh, (0, 0), payload, row=1, col=1)
        assert out is not shards
        assert np.array_equal(out[(0, 0)][1:3, 1:3], payload)
        assert not np.array_equal(shards[(0, 0)][1:3, 1:3], payload)
        assert out[(1, 1)] is shards[(1, 1)]  # untouched entries alias

    def test_accumulate_adds(self, shards, mesh):
        payload = np.ones_like(shards[(1, 1)])
        out = accumulate(shards, mesh, (1, 1), payload)
        assert np.array_equal(out[(1, 1)], shards[(1, 1)] + 1.0)

    def test_dtype_mismatch_names_rank(self, shards, mesh):
        bad = np.ones((2, 2), dtype=np.float32)
        with pytest.raises(
            ValueError, match=r"disagrees with rank \(0, 0\) shard dtype"
        ):
            put(shards, mesh, (0, 0), bad)

    def test_payload_overflow_names_rank(self, shards, mesh):
        big = np.ones((9, 9))
        with pytest.raises(
            ValueError, match=r"does not fit rank \(0, 1\) shard"
        ):
            accumulate(shards, mesh, (0, 1), big)
        with pytest.raises(ValueError, match="does not fit"):
            put(shards, mesh, (0, 1), np.ones((2, 2)), row=3, col=3)


class TestGatherGet:
    def test_matches_concatenation(self, shards, mesh):
        sources = ((0, 0), (1, 0))
        gathered = gather_get(shards, mesh, sources, axis=0)
        assert np.array_equal(
            gathered, np.concatenate([shards[s] for s in sources], axis=0)
        )

    def test_mismatched_shard_names_rank(self, mesh):
        bad = {
            (0, 0): np.ones((4, 4)),
            (1, 0): np.ones((4, 3)),
        }
        with pytest.raises(ValueError, match="gather_get: rank 1 shard"):
            gather_get(bad, mesh, ((0, 0), (1, 0)), axis=0)

    def test_empty_sources_rejected(self, shards, mesh):
        with pytest.raises(ValueError, match="at least one source"):
            gather_get(shards, mesh, (), axis=0)


class TestSDCHooks:
    def test_get_passes_sdc_hook(self, shards, mesh):
        plan = SDCPlan(rate=1.0, ops=("onesided_get",), seed=3)
        with sdc_injection(plan) as injector:
            corrupted = get(shards, mesh, (0, 0))
        assert injector.flips == 1
        assert not np.array_equal(corrupted, shards[(0, 0)])
        assert injector.events[0].op == "onesided_get"

    def test_put_and_accumulate_hooks(self, shards, mesh):
        payload = np.ones_like(shards[(0, 0)])
        plan = SDCPlan(
            rate=1.0, ops=("onesided_put", "onesided_acc"), seed=3
        )
        with sdc_injection(plan) as injector:
            put(shards, mesh, (0, 0), payload)
            accumulate(shards, mesh, (0, 0), payload)
        assert [e.op for e in injector.events] == [
            "onesided_put", "onesided_acc",
        ]

    def test_null_plan_is_bit_identical(self, shards, mesh):
        bare = get(shards, mesh, (1, 0), rows=(0, 2))
        with sdc_injection(SDCPlan()) as injector:
            under_null = get(shards, mesh, (1, 0), rows=(0, 2))
        assert injector.flips == 0
        assert np.array_equal(bare, under_null)
