"""Tests for the 3D (DP x PP x TP) cluster composition model."""

import pytest

from repro.experiments.ablation_3d import (
    baseline_config,
    paper_style_ratios,
    run as run_ablation,
    same_cluster_config,
    scale_out_config,
    traffic_ratios,
)
from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.models import GPT3_175B
from repro.parallel3d import (
    Parallel3DConfig,
    dp_allreduce_traffic_bytes,
    estimate_step,
    per_chip_weight_bytes,
)


def cfg(dp=4, pp=4, mesh=Mesh2D(4, 4), batch=256, micro=None):
    return Parallel3DConfig(
        model=GPT3_175B, dp=dp, pp=pp, tp_mesh=mesh,
        global_batch=batch, microbatches=micro,
    )


class TestConfig:
    def test_chips(self):
        assert cfg().chips == 4 * 4 * 16

    def test_layers_per_stage(self):
        assert cfg(pp=8).layers_per_stage == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            cfg(pp=7)  # 96 layers do not divide
        with pytest.raises(ValueError):
            cfg(dp=0)
        with pytest.raises(ValueError):
            cfg(dp=512, batch=256)

    def test_is_2d(self):
        assert cfg(mesh=Mesh2D(4, 4)).is_2d_tp
        assert not cfg(mesh=Mesh2D(1, 16)).is_2d_tp

    def test_microbatch_defaults_fill_pipeline(self):
        c = cfg(pp=8)
        assert c.num_microbatches >= c.pp

    def test_explicit_microbatches(self):
        assert cfg(micro=16).num_microbatches == 16


class TestWeightsAndTraffic:
    def test_weight_shard_shrinks_with_tp(self):
        w8 = per_chip_weight_bytes(cfg(mesh=Mesh2D(1, 8)))
        w128 = per_chip_weight_bytes(cfg(mesh=Mesh2D(16, 8)))
        assert w8 == pytest.approx(16 * w128)

    def test_weight_shard_grows_with_fewer_stages(self):
        w_pp8 = per_chip_weight_bytes(cfg(pp=8))
        w_pp2 = per_chip_weight_bytes(cfg(pp=2))
        assert w_pp2 == pytest.approx(4 * w_pp8)

    def test_dp1_no_traffic(self):
        assert dp_allreduce_traffic_bytes(cfg(dp=1, batch=256)) == 0.0

    def test_ring_allreduce_factor(self):
        c = cfg(dp=4)
        expected = 2 * 3 / 4 * per_chip_weight_bytes(c)
        assert dp_allreduce_traffic_bytes(c) == pytest.approx(expected)


class TestEstimateStep:
    def test_breakdown_consistency(self):
        step = estimate_step(cfg(), TPUV4)
        assert step.pipeline_seconds >= step.stage_seconds
        assert step.step_seconds >= step.pipeline_seconds
        assert 0 <= step.bubble_fraction < 1
        assert 0 < step.flop_utilization < 1

    def test_more_microbatches_fewer_bubbles(self):
        few = estimate_step(cfg(pp=8, micro=8), TPUV4)
        many = estimate_step(cfg(pp=8, micro=32), TPUV4)
        assert many.bubble_fraction < few.bubble_fraction

    def test_dp_overlap_bound_checked(self):
        with pytest.raises(ValueError):
            estimate_step(cfg(), TPUV4, dp_overlap_fraction=1.5)

    def test_algorithm_defaults(self):
        """1D rings default to the 1D TP algorithm, 2D to MeshSlice."""
        ring = estimate_step(cfg(mesh=Mesh2D(1, 16)), TPUV4)
        mesh = estimate_step(cfg(mesh=Mesh2D(4, 4)), TPUV4)
        assert ring.step_seconds > 0 and mesh.step_seconds > 0


class TestSection22Ablation:
    def test_paper_ratios_exact(self):
        """The intro's 16x and 64x DP-traffic reductions."""
        scale_out, same_cluster = paper_style_ratios()
        assert scale_out == pytest.approx(16.0)
        assert same_cluster == pytest.approx(64.0)

    def test_ring_accounting_scale_out_is_16x(self):
        rows = run_ablation()
        scale_out, same_cluster = traffic_ratios(rows)
        assert scale_out == pytest.approx(16.0, rel=0.01)
        # The exact ring accounting gives a smaller same-cluster ratio
        # (pipeline staging grows the shard back); still a clear win.
        assert same_cluster > 3.0

    def test_configs_consistent(self):
        assert baseline_config().chips == same_cluster_config().chips
        assert scale_out_config().chips == 16 * baseline_config().chips

    def test_same_cluster_cuts_bubbles(self):
        rows = run_ablation()
        by_label = {r.label: r for r in rows}
        assert (
            by_label["same-cluster 128-way 2D TP"].bubble_fraction
            < by_label["baseline 8-way 1D TP"].bubble_fraction
        )

    def test_same_cluster_utilization_competitive(self):
        rows = run_ablation()
        by_label = {r.label: r for r in rows}
        base = by_label["baseline 8-way 1D TP"].utilization
        wide = by_label["same-cluster 128-way 2D TP"].utilization
        assert wide > 0.85 * base
