"""Tests for the per-step ring simulator and its agreement with the
closed-form cost model (the Figure 15 validation relationship)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import CommCostModel
from repro.hw import TPUV4
from repro.sim.ring import (
    simulate_allgather,
    simulate_broadcast,
    simulate_reduce,
    simulate_reducescatter,
    simulate_sendrecv,
)


class TestAgreementWithCostModel:
    """With homogeneous start times the step simulation must equal the
    linear model exactly — the model's founding assumption."""

    @settings(max_examples=30, deadline=None)
    @given(ring=st.integers(1, 32), mb=st.floats(0.001, 512.0))
    def test_allgather(self, ring, mb):
        shard = mb * 1e6
        sim = simulate_allgather(ring, shard, TPUV4)
        model = CommCostModel(TPUV4).allgather(ring, shard)
        assert sim.total_time == pytest.approx(model.total, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(ring=st.integers(1, 32), mb=st.floats(0.001, 512.0))
    def test_reducescatter(self, ring, mb):
        shard = mb * 1e6
        sim = simulate_reducescatter(ring, shard, TPUV4)
        model = CommCostModel(TPUV4).reducescatter(ring, shard)
        assert sim.total_time == pytest.approx(model.total, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        ring=st.integers(1, 16),
        mb=st.floats(0.001, 64.0),
        packets=st.integers(1, 64),
    )
    def test_broadcast(self, ring, mb, packets):
        shard = mb * 1e6
        sim = simulate_broadcast(ring, shard, packets, TPUV4)
        model = CommCostModel(TPUV4).broadcast(ring, shard, packets)
        assert sim.total_time == pytest.approx(model.total, rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(mb=st.floats(0.001, 64.0), hops=st.integers(1, 8))
    def test_sendrecv(self, mb, hops):
        sim = simulate_sendrecv(mb * 1e6, hops, TPUV4)
        model = CommCostModel(TPUV4).sendrecv(mb * 1e6, hops)
        assert sim.total_time == pytest.approx(model.total, rel=1e-9)


class TestSkewAbsorption:
    def test_skew_increases_time(self):
        shard = 1e6
        flat = simulate_allgather(8, shard, TPUV4)
        skewed = simulate_allgather(
            8, shard, TPUV4, start_times=[i * 1e-5 for i in range(8)]
        )
        assert skewed.total_time > flat.total_time

    def test_skew_bounded_by_max_start(self):
        """The skewed collective finishes no later than flat + max skew."""
        shard = 1e6
        starts = [0.0, 5e-5, 1e-5, 3e-5]
        flat = simulate_allgather(4, shard, TPUV4)
        skewed = simulate_allgather(4, shard, TPUV4, start_times=starts)
        assert skewed.total_time <= flat.total_time + max(starts) + 1e-12

    def test_wrong_start_count_rejected(self):
        with pytest.raises(ValueError):
            simulate_allgather(4, 1e6, TPUV4, start_times=[0.0, 0.0])


class TestStructure:
    def test_allgather_step_count(self):
        sim = simulate_allgather(6, 1e6, TPUV4)
        assert len(sim.step_completions) == 5
        assert sim.syncs == 5
        assert sim.bytes_per_link == pytest.approx(5e6)

    def test_broadcast_stage_count(self):
        sim = simulate_broadcast(4, 1e6, 8, TPUV4)
        assert sim.syncs == 4 + 8 - 2

    def test_single_chip_trivial(self):
        assert simulate_allgather(1, 1e9, TPUV4).syncs == 0
        assert simulate_broadcast(1, 1e9, 4, TPUV4).syncs == 0

    def test_reduce_mirrors_broadcast(self):
        b = simulate_broadcast(4, 1e6, 4, TPUV4)
        r = simulate_reduce(4, 1e6, 4, TPUV4)
        assert r.total_time == pytest.approx(b.total_time)

    def test_zero_message_sendrecv(self):
        assert simulate_sendrecv(0.0, 3, TPUV4).total_time == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_allgather(0, 1e6, TPUV4)
        with pytest.raises(ValueError):
            simulate_broadcast(4, 1e6, 0, TPUV4)
        with pytest.raises(ValueError):
            simulate_sendrecv(-1.0, 1, TPUV4)

    def test_step_completions_monotone(self):
        sim = simulate_allgather(8, 1e6, TPUV4)
        assert sim.step_completions == sorted(sim.step_completions)
