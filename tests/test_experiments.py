"""Smoke and shape tests for every experiment module (small scale).

These run each figure/table reproduction at reduced scale (16-64 chips,
fewer algorithms) and assert the paper's qualitative claims hold:
orderings, optimum agreement, traffic ratios.
"""

import pytest

from repro.experiments import (
    ablation_25d,
    ablation_faults,
    ablation_recovery,
    ablation_sdc,
    ablation_zoo,
    fig09_weak_scaling,
    fig10_comm_breakdown,
    fig11_matrix_shapes,
    fig12_strong_scaling,
    fig13_mesh_shapes,
    fig14_slice_counts,
    fig15_comm_model_accuracy,
    table2_dataflow_opt,
    table3_real_hw,
)
from repro.mesh import Mesh2D
from repro.models import GPT3_175B


class TestFig9:
    def test_rows_and_ordering(self):
        rows = fig09_weak_scaling.run(
            models=(GPT3_175B,),
            sizes=(16,),
            algorithms=("meshslice", "collective", "wang"),
        )
        assert len(rows) == 3
        by_alg = {r.algorithm: r for r in rows}
        assert by_alg["meshslice"].utilization > by_alg["wang"].utilization
        assert by_alg["wang"].utilization > by_alg["collective"].utilization

    def test_cannon_none_on_nonsquare(self):
        rows = fig09_weak_scaling.run(
            models=(GPT3_175B,), sizes=(32,), algorithms=("cannon",)
        )
        assert rows[0].utilization is None

    def test_speedup_helper(self):
        rows = fig09_weak_scaling.run(
            models=(GPT3_175B,), sizes=(16,),
            algorithms=("meshslice", "wang"),
        )
        fc, e2e = fig09_weak_scaling.speedup_over(rows, GPT3_175B.name, 16)
        assert fc > 0
        assert 0 < e2e < fc  # non-FC time dilutes the speedup


class TestFig10:
    def test_breakdown_structure(self):
        rows = fig10_comm_breakdown.run(
            models=(GPT3_175B,), chips=16,
            algorithms=("collective", "summa", "meshslice"),
        )
        by_alg = {r.algorithm: r for r in rows}
        for row in rows:
            assert row.launch >= 0 and row.transfer > 0 and row.sync >= 0
        # SUMMA pays more synchronization than Collective (Fig. 10).
        assert by_alg["summa"].sync > by_alg["collective"].sync

    def test_collective_has_least_total(self):
        rows = fig10_comm_breakdown.run(
            models=(GPT3_175B,), chips=16,
            algorithms=("collective", "meshslice", "1dtp"),
        )
        by_alg = {r.algorithm: r for r in rows}
        assert by_alg["collective"].total < by_alg["1dtp"].total
        assert by_alg["collective"].total <= by_alg["meshslice"].total


class TestFig11:
    def test_distinct_shapes_and_winner(self):
        rows = fig11_matrix_shapes.run(
            models=(GPT3_175B,), chips=16, batch_size=8,
            algorithms=("meshslice", "collective"),
        )
        labels = {r.label for r in rows}
        assert len(labels) == 8
        speedup = fig11_matrix_shapes.average_speedup(
            rows, "meshslice", "collective"
        )
        assert speedup > 0


class TestFig12:
    def test_no_fsdp_and_declining_utilization(self):
        rows = fig12_strong_scaling.run(
            models=(GPT3_175B,), sizes=(16, 64), batch_size=32,
            algorithms=("meshslice",),
        )
        assert all(r.algorithm != "fsdp" for r in rows)
        by_chips = {r.chips: r.utilization for r in rows}
        assert by_chips[64] < by_chips[16]


class TestTable2:
    def test_optimization_helps_gpt3(self):
        rows = table2_dataflow_opt.run(models=(GPT3_175B,), chips=64)
        row = rows[0]
        assert row.optimized >= row.not_optimized
        assert row.speedup >= 0


class TestFig13:
    def test_cost_model_ranks_like_simulator(self):
        meshes = [Mesh2D(2, 8), Mesh2D(4, 4), Mesh2D(8, 2)]
        rows = fig13_mesh_shapes.run(
            models=(GPT3_175B,), chips=16, meshes=meshes
        )
        est, sim = fig13_mesh_shapes.optimal_shapes(rows, GPT3_175B.name)
        assert est == sim

    def test_raises_on_unknown_model(self):
        rows = fig13_mesh_shapes.run(
            models=(GPT3_175B,), chips=16, meshes=[Mesh2D(4, 4)]
        )
        with pytest.raises(ValueError):
            fig13_mesh_shapes.optimal_shapes(rows, "nope")


class TestFig14:
    def test_optimum_agreement_small(self):
        rows = fig14_slice_counts.run(
            models=(GPT3_175B,), chips=16, mesh=Mesh2D(4, 4),
            slice_counts=(1, 2, 4, 8, 16),
        )
        est, sim = fig14_slice_counts.optimal_slices(rows, GPT3_175B.name)
        assert est in (1, 2, 4, 8, 16)
        assert sim in (1, 2, 4, 8, 16)

    def test_infeasible_slice_count_reported_as_none(self):
        rows = fig14_slice_counts.run(
            models=(GPT3_175B,), chips=16, mesh=Mesh2D(4, 4),
            slice_counts=(7,),
        )
        assert rows[0].estimated_utilization is None


class TestTable3:
    def test_structure_and_claims(self):
        rows = table3_real_hw.run(models=(GPT3_175B,), batch_size=8)
        row = rows[0]
        # Without AG/RdS overlap MeshSlice trails Collective slightly...
        assert row.meshslice < row.collective
        assert row.meshslice_overhead < 0.30
        # ...but with overlap it would win clearly (last column).
        assert row.meshslice_overlap > row.collective


class TestFig15:
    def test_small_average_error(self):
        rows = fig15_comm_model_accuracy.run(models=(GPT3_175B,), batch_size=8)
        assert len(rows) == 4
        error = fig15_comm_model_accuracy.average_error(rows)
        assert 0.0 < error < 0.15

    def test_measured_at_least_estimated(self):
        """Skew can only delay ring steps, never accelerate them."""
        rows = fig15_comm_model_accuracy.run(models=(GPT3_175B,), batch_size=8)
        for row in rows:
            assert row.measured_ms >= row.estimated_ms


class TestAblation25D:
    def test_paper_numbers(self):
        rows = ablation_25d.run()
        by_method = {r.method: r for r in rows}
        two5d = by_method["2.5D GeMM"]
        ms = by_method["MeshSlice+DP"]
        assert two5d.topology == "16x16x4"
        assert ms.topology == "32x8x4"
        # Paper: 1.6 GB vs 336 MB.
        assert two5d.per_chip_traffic_gb == pytest.approx(1.6, rel=0.10)
        assert ms.per_chip_traffic_gb == pytest.approx(0.336, rel=0.10)

    def test_rejects_nonsquare_base(self):
        with pytest.raises(ValueError, match="square"):
            ablation_25d.run(chips=512, copies=4)

    def test_traffic_models_validate_inputs(self):
        with pytest.raises(ValueError):
            ablation_25d.traffic_25d(ablation_25d.EXAMPLE_SHAPE, 0, 4)
        with pytest.raises(ValueError):
            ablation_25d.traffic_meshslice_dp(
                ablation_25d.EXAMPLE_SHAPE, Mesh2D(4, 4), 0
            )


class TestAblationFaults:
    def _rows(self, severities=(1.5,), counts=(2,)):
        return ablation_faults.run(
            chips=16,
            algorithms=("meshslice", "collective"),
            severities=severities,
            counts=counts,
            ensemble=2,
            jobs=1,
        )

    def test_covers_grid(self):
        rows = self._rows(severities=(1.25, 2.0), counts=(1, 4))
        assert len(rows) == 8
        assert {r.algorithm for r in rows} == {"meshslice", "collective"}

    def test_faults_only_inflate(self):
        for row in self._rows():
            assert row.faulted_ms >= row.clean_ms
            assert row.inflation >= 1.0

    def test_severity_monotone(self):
        rows = self._rows(severities=(1.25, 2.0), counts=(2,))
        by_key = {(r.algorithm, r.severity): r for r in rows}
        for algorithm in ("meshslice", "collective"):
            assert (
                by_key[(algorithm, 2.0)].inflation
                >= by_key[(algorithm, 1.25)].inflation
            )

    def test_deterministic(self):
        assert self._rows() == self._rows()

    def test_compute_faults_shrink_comm_share(self):
        # Stragglers inflate compute, so communication's share of the
        # block can only fall.
        for row in self._rows(severities=(2.0,), counts=(4,)):
            assert row.comm_share_faulted <= row.comm_share_clean


class TestAblationSdc:
    def _rows(self, rates=(0.05,), meshes=((2, 2),), **kwargs):
        return ablation_sdc.run(
            rates=rates, meshes=meshes, trials=3, seed=11, jobs=1, **kwargs
        )

    def test_covers_grid(self):
        rows = self._rows(rates=(0.01, 0.05), meshes=((2, 2), (2, 4)))
        assert len(rows) == 4
        assert {(r.rate, r.mesh) for r in rows} == {
            (0.01, (2, 2)), (0.01, (2, 4)),
            (0.05, (2, 2)), (0.05, (2, 4)),
        }

    def test_protection_never_worse_than_bare(self):
        for row in self._rows():
            assert row.trials == 3
            assert row.protected_escapes <= row.unprotected_escapes
            assert 0 <= row.protected_escape_rate <= row.unprotected_escape_rate

    def test_abft_costs_time(self):
        for row in self._rows():
            assert row.overhead_pct > 0.0

    def test_repairs_accounted(self):
        # Every protected trial ends clean, corrected, or recomputed;
        # repairs can't exceed what was actually injected.
        rows = self._rows(rates=(1.0,))
        for row in rows:
            assert row.flips > 0
            assert row.corrected + row.recomputed <= row.flips

    def test_deterministic(self):
        assert self._rows() == self._rows()

    def test_collective_forces_single_slice(self):
        rows = self._rows(algorithm="collective")
        assert rows and all(r.overhead_pct > 0 for r in rows)


class TestMains:
    """Every experiment's main() renders a non-empty report."""

    @pytest.mark.parametrize(
        "module,kwargs",
        [
            (fig09_weak_scaling, {"sizes": (16,)}),
            (fig12_strong_scaling, {"sizes": (16,)}),
            (table2_dataflow_opt, {"chips": 16}),
            (fig13_mesh_shapes, {"chips": 16}),
            (table3_real_hw, {}),
            (fig15_comm_model_accuracy, {}),
            (ablation_25d, {}),
            (ablation_faults, {}),
            (ablation_sdc, {}),
        ],
    )
    def test_main_renders(self, module, kwargs):
        report = module.main(**kwargs)
        assert isinstance(report, str)
        assert len(report.splitlines()) > 2


class TestAblationZoo:
    """The algorithm-zoo comparison at a single reduced grid point."""

    def _rows(self, **kwargs):
        return ablation_zoo.run(
            points=(("tiny", (512, 512, 512), 4),), jobs=1, **kwargs
        )

    def test_registered(self):
        from repro.experiments import EXPERIMENTS

        assert EXPERIMENTS["ablation-zoo"] is ablation_zoo

    def test_every_algorithm_gets_a_row(self):
        from repro.algorithms import algorithm_names

        rows = self._rows()
        assert tuple(r.algorithm for r in rows) == algorithm_names()
        for row in rows:
            assert row.utilization is None or 0.0 < row.utilization < 1.0

    def test_prime_chip_count_served_only_by_curve_and_1d(self):
        rows = ablation_zoo.run(
            points=(("prime", (448, 448, 448), 7),), jobs=1
        )
        served = {r.algorithm for r in rows if r.utilization is not None}
        assert served == {"1dtp", "fsdp", "sfc"}

    def test_render_footers_curve_lengths(self):
        report = ablation_zoo.render(self._rows())
        assert "8x8 rank-layout curve lengths: hilbert=63" in report
        assert "morton=112, row-major=112" in report

    def test_deterministic(self):
        assert self._rows() == self._rows()


class TestAblationRecovery:
    def _rows(self, sizes=(16,)):
        return ablation_recovery.run(sizes=sizes, jobs=1)

    def test_registered(self):
        from repro.experiments import EXPERIMENTS

        assert EXPERIMENTS["ablation-recovery"] is ablation_recovery

    def test_row_shape(self):
        rows = self._rows()
        assert len(rows) == 1
        row = rows[0]
        assert row.chips == 16
        assert row.mesh == (4, 4)
        assert row.degraded_mesh in ((3, 4), (4, 3))
        assert row.dropped in ("row", "col")
        assert row.degraded_step_ms >= row.step_ms
        assert row.degraded_slowdown >= 1.0
        assert 0.0 < row.restart_goodput < 1.0
        assert 0.0 < row.degrade_goodput < 1.0
        assert row.best_policy in ("restart", "degrade")

    def test_deterministic(self):
        assert self._rows() == self._rows()

    def test_memoized_pipeline_counters(self, monkeypatch):
        from repro.perf import cache_stats, clear_caches
        from repro.perf.cache import KILL_SWITCH_ENV

        # Opt back into caching even under the CI no-cache lane.
        monkeypatch.delenv(KILL_SWITCH_ENV, raising=False)
        clear_caches()
        self._rows()
        stats = cache_stats()
        assert stats["degraded_retune"].misses == 1
        assert stats["degraded_retune"].hits == 0
        # A warm second run replays entirely from the caches.
        self._rows()
        stats = cache_stats()
        assert stats["degraded_retune"].hits == 1
        assert stats["degraded_retune"].misses == 1

    def test_degrade_advantage_grows_with_scale(self):
        rows = self._rows(sizes=(16, 64))
        gaps = [r.degrade_goodput - r.restart_goodput for r in rows]
        assert gaps == sorted(gaps)

    def test_main_renders(self):
        report = ablation_recovery.main()
        assert "best" in report
        assert "degrade" in report
        assert len(report.splitlines()) > 4
