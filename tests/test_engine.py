"""Tests for the fluid discrete-event simulation engine."""

import pytest

from repro.sim import Activity, CORE, Engine, HBM, LINK_H, SimulationError, makespan


def act(aid, duration, exclusive=(), shared=None, deps=(), label=None, kind="compute"):
    return Activity(
        aid=aid,
        label=label or f"a{aid}",
        kind=kind,
        duration=duration,
        exclusive=tuple(exclusive),
        shared=dict(shared or {}),
        deps=tuple(deps),
    )


class TestBasicExecution:
    def test_single_activity(self):
        spans = Engine([act(0, 2.0)]).run()
        assert len(spans) == 1
        assert spans[0].start == 0.0
        assert spans[0].end == pytest.approx(2.0)

    def test_dependencies_respected(self):
        spans = Engine([act(0, 1.0), act(1, 1.0, deps=[0])]).run()
        by_id = {s.aid: s for s in spans}
        assert by_id[1].start >= by_id[0].end

    def test_independent_activities_run_in_parallel(self):
        spans = Engine([act(0, 2.0), act(1, 2.0)]).run()
        assert makespan(spans) == pytest.approx(2.0)

    def test_zero_duration_activity(self):
        spans = Engine([act(0, 0.0), act(1, 1.0, deps=[0])]).run()
        assert makespan(spans) == pytest.approx(1.0)

    def test_diamond_dag(self):
        spans = Engine(
            [
                act(0, 1.0),
                act(1, 2.0, deps=[0]),
                act(2, 3.0, deps=[0]),
                act(3, 1.0, deps=[1, 2]),
            ]
        ).run()
        assert makespan(spans) == pytest.approx(1.0 + 3.0 + 1.0)

    def test_empty_program(self):
        assert Engine([]).run() == []


class TestExclusiveResources:
    def test_serializes_same_resource(self):
        spans = Engine(
            [act(0, 1.0, exclusive=[CORE]), act(1, 1.0, exclusive=[CORE])]
        ).run()
        assert makespan(spans) == pytest.approx(2.0)
        assert sorted((s.start, s.end) for s in spans) == [(0.0, 1.0), (1.0, 2.0)]

    def test_different_resources_overlap(self):
        spans = Engine(
            [act(0, 1.0, exclusive=[CORE]), act(1, 1.0, exclusive=[LINK_H])]
        ).run()
        assert makespan(spans) == pytest.approx(1.0)

    def test_blocked_head_does_not_stall_other_resources(self):
        """A ready core activity must not block a later link activity."""
        spans = Engine(
            [
                act(0, 5.0, exclusive=[CORE]),
                act(1, 1.0, exclusive=[CORE]),  # queued behind 0
                act(2, 1.0, exclusive=[LINK_H]),  # must start immediately
            ]
        ).run()
        by_id = {s.aid: s for s in spans}
        assert by_id[2].start == pytest.approx(0.0)
        assert by_id[1].start == pytest.approx(5.0)

    def test_fifo_among_equal_ready(self):
        spans = Engine(
            [act(0, 1.0, exclusive=[CORE]), act(1, 1.0, exclusive=[CORE])]
        ).run()
        by_id = {s.aid: s for s in spans}
        assert by_id[0].start < by_id[1].start

    def test_multi_resource_activity(self):
        """Holding both core and link blocks both."""
        spans = Engine(
            [
                act(0, 1.0, exclusive=[CORE, LINK_H]),
                act(1, 1.0, exclusive=[CORE]),
                act(2, 1.0, exclusive=[LINK_H]),
            ]
        ).run()
        by_id = {s.aid: s for s in spans}
        assert by_id[1].start >= 1.0
        assert by_id[2].start >= 1.0


class TestSharedResources:
    def test_undersubscribed_runs_at_full_rate(self):
        engine = Engine(
            [act(0, 1.0, shared={HBM: 10.0}), act(1, 1.0, shared={HBM: 10.0})],
            shared_capacities={HBM: 100.0},
        )
        assert makespan(engine.run()) == pytest.approx(1.0)

    def test_oversubscription_slows_proportionally(self):
        """Two activities each demanding the full capacity take 2x."""
        engine = Engine(
            [act(0, 1.0, shared={HBM: 100.0}), act(1, 1.0, shared={HBM: 100.0})],
            shared_capacities={HBM: 100.0},
        )
        assert makespan(engine.run()) == pytest.approx(2.0)

    def test_partial_contention(self):
        """150% total demand scales both rates by 2/3."""
        engine = Engine(
            [act(0, 1.0, shared={HBM: 75.0}), act(1, 1.0, shared={HBM: 75.0})],
            shared_capacities={HBM: 100.0},
        )
        assert makespan(engine.run()) == pytest.approx(1.5)

    def test_rate_recovery_after_completion(self):
        """When one contender finishes the survivor speeds back up."""
        engine = Engine(
            [act(0, 0.5, shared={HBM: 100.0}), act(1, 1.0, shared={HBM: 100.0})],
            shared_capacities={HBM: 100.0},
        )
        spans = engine.run()
        by_id = {s.aid: s for s in spans}
        # Both halved until t=1.0 (act 0 done), then act 1 full rate:
        # act 1 has 0.5 work left at t=1.0 -> finishes at 1.5.
        assert by_id[0].end == pytest.approx(1.0)
        assert by_id[1].end == pytest.approx(1.5)

    def test_unlisted_shared_resource_is_unconstrained(self):
        engine = Engine([act(0, 1.0, shared={"other": 1e12})])
        assert makespan(engine.run()) == pytest.approx(1.0)


class TestValidation:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(SimulationError, match="duplicate"):
            Engine([act(0, 1.0), act(0, 1.0)])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(SimulationError, match="unknown"):
            Engine([act(0, 1.0, deps=[7])])

    def test_cycle_detected(self):
        with pytest.raises(SimulationError, match="cycle"):
            Engine([act(0, 1.0, deps=[1]), act(1, 1.0, deps=[0])]).run()

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            act(0, -1.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            act(0, 1.0, shared={HBM: -1.0})


class TestSpans:
    def test_span_metadata_preserved(self):
        activity = Activity(
            aid=0, label="x", kind="comm", duration=1.0, meta={"foo": 42}
        )
        spans = Engine([activity]).run()
        assert spans[0].meta["foo"] == 42
        assert spans[0].kind == "comm"
        assert spans[0].duration == pytest.approx(1.0)

    def test_spans_sorted_by_start(self):
        spans = Engine(
            [act(i, 0.5, exclusive=[CORE]) for i in range(5)]
        ).run()
        starts = [s.start for s in spans]
        assert starts == sorted(starts)


class TestHardFaultExecution:
    """Engine.run_with_failures: structured SimFailure semantics."""

    def _dag(self):
        return [
            act(0, 1.0, exclusive=[CORE]),
            act(1, 2.0, exclusive=[LINK_H], deps=[0], kind="comm"),
            act(2, 4.0, exclusive=[CORE], deps=[0]),
        ]

    def test_no_faults_equals_fast_path(self):
        from repro.sim import Engine as E

        acts = self._dag()
        spans, failure = E(acts).run_with_failures(())
        assert failure is None
        assert spans == E(self._dag()).run()

    def test_late_fault_never_fires(self):
        from repro.faults import chip_down

        acts = self._dag()
        spans, failure = Engine(acts).run_with_failures((chip_down(100.0),))
        assert failure is None
        assert spans == Engine(self._dag()).run()

    def test_fault_truncates_in_flight_work(self):
        from repro.faults import chip_down

        spans, failure = Engine(self._dag()).run_with_failures(
            (chip_down(2.5),)
        )
        assert failure is not None
        assert failure.time == 2.5
        assert failure.kind == "chip"
        assert failure.resource == CORE
        # Only activity 0 finished; spans carry completed work only.
        assert [s.aid for s in spans] == [0]
        assert failure.finished == 1
        assert failure.unstarted == 0
        assert {s.aid for s in failure.in_flight} == {1, 2}
        for span in failure.in_flight:
            assert span.end == 2.5
            assert span.meta.get("interrupted") is True
        assert failure.total == 3

    def test_completion_exactly_at_fault_time_counts(self):
        from repro.faults import link_down

        # Activity 1 holds LINK_H over [1, 3]; a link death at exactly
        # t=3 does not interrupt it — completions at the fault instant
        # count as finished. The fault still halts the lockstep step,
        # interrupting the unrelated compute activity 2.
        spans, failure = Engine(self._dag()).run_with_failures(
            (link_down(3.0, LINK_H),)
        )
        assert failure is not None
        assert [s.aid for s in spans] == [0, 1]
        assert spans[1].end == 3.0
        assert failure.finished == 2
        assert [s.aid for s in failure.in_flight] == [2]

    def test_earliest_fault_wins(self):
        from repro.faults import chip_down, link_down

        _spans, failure = Engine(self._dag()).run_with_failures(
            (chip_down(4.0), link_down(1.5, LINK_H))
        )
        assert failure is not None
        assert failure.time == 1.5
        assert failure.kind == "link"
        assert failure.resource == LINK_H
