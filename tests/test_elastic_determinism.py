"""The elastic-lifetime determinism contract, pinned in subprocesses.

The seeded lifetime simulator follows the FaultSpec convention — one
``random.Random(seed)`` consumed in a fixed order — so its structured
JSONL event log, the CLI's ``--events`` / ``--metrics`` exports, and
the ``ablation-elastic`` grid rows must be **byte-identical** across
``PYTHONHASHSEED`` values and ``grid_map`` worker counts. These tests
run real subprocesses under different hash seeds and job counts and
diff the raw bytes.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

HASHSEEDS = ("0", "1", "4242")

#: All four policies through the table-driven planner; dumps every
#: event log plus the goodput reprs to stdout.
LIFETIME_SCRIPT = """
import sys
from repro.mesh import Mesh2D
from repro.recovery import (
    ClusterReliability,
    LifetimeSpec,
    POLICIES,
    TableElasticPlanner,
    simulate_lifetime,
)

planner = TableElasticPlanner(
    Mesh2D(4, 4),
    step_seconds=1.0,
    degraded={1: (Mesh2D(3, 4), 1.5), 2: (Mesh2D(3, 3), 2.0)},
    reshaped={15: (Mesh2D(3, 5), 1.4), 14: (Mesh2D(2, 7), 1.9)},
    migration_seconds=5.0,
)
flaky = ClusterReliability(
    chip_mtbf=3600.0 * 16, chips=16, repair_seconds=86400.0
)
for policy in POLICIES:
    result = simulate_lifetime(
        planner,
        flaky,
        LifetimeSpec(policy=policy, duration_days=3.0, spares=2, seed=11),
        60.0,
        30.0,
    )
    sys.stdout.write(result.event_log_jsonl() + "\\n")
    sys.stdout.write(f"{policy} goodput={result.goodput!r}\\n")
"""

#: The real grid — tuned planner, reshard migrations — mapped at a
#: caller-chosen worker count: argv = (jobs,). Rows dump through the
#: campaign codec (canonical bytes or TypeError). Rows only: the
#: parent registry's *totals* after a plain ``grid_map`` legitimately
#: depend on worker topology (cross-point memoization is shared
#: serially, split across pool workers); per-point metrics are pinned
#: through the campaign store below, which isolates caches per point.
GRID_SCRIPT = """
import sys
from repro.campaign.codec import canonical_json
from repro.experiments.ablation_elastic import run

rows = run(
    mtbf_hours=(500.0,), spare_counts=(0, 2), duration_days=5.0,
    jobs=int(sys.argv[1]),
)
sys.stdout.write(canonical_json(rows) + "\\n")
"""

#: The same reduced grid through a durable campaign store: argv =
#: (root, jobs). Stored records carry each point's rows *and* its
#: metrics delta — including the ``elastic.migration_seconds``
#: histogram, whose non-dyadic float total is what exposes any
#: rounding drift between serial and pooled accumulation.
CAMPAIGN_SCRIPT = """
import sys
from repro.campaign import CampaignRunner, CampaignStore
from repro.experiments.ablation_elastic import _campaign_point, _grid_points
from repro.hw.presets import TPUV4
from repro.models import GPT3_175B

root, jobs = sys.argv[1], int(sys.argv[2])
points = _grid_points(
    GPT3_175B, TPUV4, (500.0,), (0, 2), 60.0, 60.0, 180.0, 5.0, 0
)
summary = CampaignRunner(
    CampaignStore(root), "elastic-determinism", _campaign_point, jobs=jobs
).run(points)
sys.stdout.write(f"complete={summary.complete} ran={summary.ran}\\n")
"""


def _env(hashseed):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hashseed
    env.pop("REPRO_NO_METRICS", None)
    env.pop("REPRO_NO_CACHE", None)
    env.pop("REPRO_JOBS", None)
    return env


def _run(argv, hashseed, cwd=None):
    proc = subprocess.run(
        argv, capture_output=True, env=_env(hashseed), timeout=600, cwd=cwd
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


class TestLifetimeLogAcrossHashSeeds:
    def test_event_logs_byte_identical(self):
        outputs = {
            _run([sys.executable, "-c", LIFETIME_SCRIPT], seed)
            for seed in HASHSEEDS
        }
        assert len(outputs) == 1
        (log,) = outputs
        assert b'"kind":"end"' in log  # the logs actually materialized


class TestCliExportsAcrossHashSeeds:
    def _cli(self, tmp_path, hashseed):
        out = tmp_path / hashseed
        out.mkdir()
        # Relative output paths + cwd keep the per-seed directory out
        # of the echoed stdout so the streams diff byte-for-byte.
        stdout = _run(
            [
                sys.executable, "-m", "repro.cli", "elastic", "llama2-70b",
                "--mesh", "4x4", "--policy", "replace", "--spares", "2",
                "--duration-days", "10", "--chip-mtbf-hours", "500",
                "--events", "events.jsonl",
                "--metrics", "metrics.jsonl",
            ],
            hashseed,
            cwd=str(out),
        )
        return (
            stdout,
            (out / "events.jsonl").read_bytes(),
            (out / "metrics.jsonl").read_bytes(),
        )

    def test_events_metrics_and_stdout_byte_identical(self, tmp_path):
        baseline = self._cli(tmp_path, HASHSEEDS[0])
        stdout, events, metrics = baseline
        assert events.count(b"\n") > 0
        assert b"elastic.lifetimes" in metrics
        assert b"replace" in stdout
        for seed in HASHSEEDS[1:]:
            assert self._cli(tmp_path, seed) == baseline


class TestGridAcrossWorkerCounts:
    def test_rows_byte_identical(self):
        """Serial, 2-way, and 4-way pools under rotating hash seeds
        all produce the same canonical row bytes."""
        outputs = {
            _run([sys.executable, "-c", GRID_SCRIPT, str(jobs)], seed)
            for jobs, seed in ((1, "0"), (2, "4242"), (4, "1"))
        }
        assert len(outputs) == 1
        (dump,) = outputs
        assert b"simulated_goodput" in dump

    def test_campaign_store_byte_identical(self, tmp_path):
        """The stored sweep — rows plus per-point metrics deltas,
        histograms included — is byte-identical whatever the worker
        count or hash seed that wrote it."""
        stores = set()
        for jobs, seed in ((1, "0"), (2, "4242"), (4, "1")):
            root = tmp_path / f"j{jobs}-h{seed}"
            root.mkdir()
            out = _run(
                [
                    sys.executable, "-c", CAMPAIGN_SCRIPT, str(root),
                    str(jobs),
                ],
                seed,
            )
            assert b"complete=True ran=5" in out
            stores.add((root / "elastic-determinism.jsonl").read_bytes())
        assert len(stores) == 1
        (store,) = stores
        assert b"simulated_goodput" in store
        assert b"elastic.migration_seconds" in store
        assert b"elastic.lifetimes" in store
