"""Tests for the 2D torus and ring topologies."""

import pytest
from hypothesis import given, strategies as st

from repro.mesh import (
    Mesh2D,
    Ring1D,
    divisors,
    factor_pairs,
    mesh_shapes,
    square_mesh,
)


class TestMesh2D:
    def test_basic_properties(self):
        mesh = Mesh2D(4, 8)
        assert mesh.size == 32
        assert not mesh.is_square
        assert mesh.shape == (4, 8)
        assert str(mesh) == "4x8"

    def test_square(self):
        assert Mesh2D(3, 3).is_square

    def test_transposed(self):
        assert Mesh2D(2, 8).transposed() == Mesh2D(8, 2)

    def test_coords_cover_all_chips(self):
        mesh = Mesh2D(3, 5)
        coords = list(mesh.coords())
        assert len(coords) == 15
        assert len(set(coords)) == 15
        assert all(mesh.contains(c) for c in coords)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 4)
        with pytest.raises(ValueError):
            Mesh2D(4, -1)

    def test_row_ring_order(self):
        mesh = Mesh2D(2, 3)
        assert mesh.row_ring(1) == [(1, 0), (1, 1), (1, 2)]

    def test_col_ring_order(self):
        mesh = Mesh2D(3, 2)
        assert mesh.col_ring(0) == [(0, 0), (1, 0), (2, 0)]

    def test_ring_index_bounds(self):
        mesh = Mesh2D(2, 2)
        with pytest.raises(IndexError):
            mesh.row_ring(2)
        with pytest.raises(IndexError):
            mesh.col_ring(-1)

    def test_neighbors_wrap_torus(self):
        mesh = Mesh2D(3, 4)
        assert mesh.right_neighbor((0, 3)) == (0, 0)
        assert mesh.left_neighbor((0, 0)) == (0, 3)
        assert mesh.down_neighbor((2, 1)) == (0, 1)
        assert mesh.up_neighbor((0, 1)) == (2, 1)

    def test_neighbor_bounds_checked(self):
        with pytest.raises(IndexError):
            Mesh2D(2, 2).right_neighbor((5, 0))

    def test_ring_distance_uses_shorter_direction(self):
        mesh = Mesh2D(1, 8)
        assert mesh.ring_distance_row((0, 0), (0, 1)) == 1
        assert mesh.ring_distance_row((0, 0), (0, 7)) == 1
        assert mesh.ring_distance_row((0, 0), (0, 4)) == 4

    def test_ring_distance_requires_same_ring(self):
        mesh = Mesh2D(2, 2)
        with pytest.raises(ValueError):
            mesh.ring_distance_row((0, 0), (1, 1))
        with pytest.raises(ValueError):
            mesh.ring_distance_col((0, 0), (1, 1))

    @given(st.integers(1, 12), st.integers(1, 12))
    def test_left_then_right_is_identity(self, rows, cols):
        mesh = Mesh2D(rows, cols)
        coord = (rows - 1, cols - 1)
        assert mesh.right_neighbor(mesh.left_neighbor(coord)) == coord
        assert mesh.up_neighbor(mesh.down_neighbor(coord)) == coord


class TestRing1D:
    def test_wraps(self):
        ring = Ring1D(5)
        assert ring.next_chip(4) == 0
        assert ring.prev_chip(0) == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Ring1D(0)

    def test_rank_bounds(self):
        with pytest.raises(IndexError):
            Ring1D(3).next_chip(3)

    def test_ranks(self):
        assert list(Ring1D(3).ranks()) == [0, 1, 2]


class TestFactorizations:
    def test_factor_pairs_of_12(self):
        assert factor_pairs(12) == [(1, 12), (2, 6), (3, 4), (4, 3), (6, 2), (12, 1)]

    def test_factor_pairs_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factor_pairs(0)

    def test_mesh_shapes_min_dim(self):
        shapes = mesh_shapes(16, min_dim=2)
        assert Mesh2D(1, 16) not in shapes
        assert Mesh2D(4, 4) in shapes
        assert Mesh2D(2, 8) in shapes

    def test_square_mesh(self):
        assert square_mesh(256) == Mesh2D(16, 16)

    def test_square_mesh_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            square_mesh(32)

    def test_divisors(self):
        assert divisors(48) == [1, 2, 3, 4, 6, 8, 12, 16, 24, 48]
        assert divisors(1) == [1]

    def test_divisors_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            divisors(0)

    @given(st.integers(1, 2000))
    def test_factor_pairs_multiply_back(self, n):
        for rows, cols in factor_pairs(n):
            assert rows * cols == n

    @given(st.integers(1, 2000))
    def test_divisors_divide(self, n):
        ds = divisors(n)
        assert ds[0] == 1 and ds[-1] == n
        assert all(n % d == 0 for d in ds)
        assert ds == sorted(set(ds))


class TestDegradedShapes:
    """Dropping a dead chip's row/column (see repro.recovery)."""

    def test_without_row(self):
        assert Mesh2D(4, 8).without_row(2) == Mesh2D(3, 8)

    def test_without_col(self):
        assert Mesh2D(4, 8).without_col(0) == Mesh2D(4, 7)

    def test_result_shape_ignores_which_index(self):
        mesh = Mesh2D(5, 6)
        assert {mesh.without_row(i) for i in range(5)} == {Mesh2D(4, 6)}
        assert {mesh.without_col(j) for j in range(6)} == {Mesh2D(5, 5)}

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            Mesh2D(4, 4).without_row(4)
        with pytest.raises(IndexError):
            Mesh2D(4, 4).without_col(-5)

    def test_cannot_vanish(self):
        with pytest.raises(ValueError):
            Mesh2D(1, 8).without_row(0)
        with pytest.raises(ValueError):
            Mesh2D(8, 1).without_col(0)
