"""Tests for the 3D-cluster GeMM algorithms (2.5D and MeshSlice+DP)."""

import numpy as np
import pytest

from repro.algorithms.stacked import (
    LINK_D,
    MeshSliceDPGeMM,
    StackedConfig,
    TwoPointFiveDGeMM,
    square_bases,
)
from repro.core import GeMMShape
from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.sim import simulate

PAPER_SHAPE = GeMMShape(m=1024 * 1024, n=12 * 1024, k=48 * 1024)


class TestStackedConfig:
    def test_chips(self):
        cfg = StackedConfig(GeMMShape(8, 8, 8), Mesh2D(4, 4), copies=4)
        assert cfg.chips == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            StackedConfig(GeMMShape(8, 8, 8), Mesh2D(2, 2), copies=0)
        with pytest.raises(ValueError):
            StackedConfig(GeMMShape(8, 8, 8), Mesh2D(2, 2), copies=2, slices=0)


class TestTwoPointFiveD:
    @pytest.mark.parametrize("copies", [1, 2, 4])
    def test_functional_matches_matmul(self, rng, copies):
        cfg = StackedConfig(GeMMShape(16, 24, 32), Mesh2D(4, 4), copies)
        a = rng.standard_normal((16, 32))
        b = rng.standard_normal((32, 24))
        c = TwoPointFiveDGeMM().functional(a, b, cfg)
        assert np.allclose(c, a @ b)

    def test_requires_square_base(self):
        cfg = StackedConfig(GeMMShape(8, 8, 8), Mesh2D(2, 4), copies=2)
        assert TwoPointFiveDGeMM().check_support(cfg) is not None

    def test_copies_must_divide_side(self):
        cfg = StackedConfig(GeMMShape(8, 8, 8), Mesh2D(4, 4), copies=3)
        assert TwoPointFiveDGeMM().check_support(cfg) is not None

    def test_paper_traffic_number(self):
        """Section 7: 1.6 GB per chip on 16x16x4."""
        cfg = StackedConfig(PAPER_SHAPE, Mesh2D(16, 16), copies=4)
        traffic = TwoPointFiveDGeMM().per_chip_traffic_bytes(cfg)
        assert traffic == pytest.approx(1.6e9, rel=0.05)

    def test_more_copies_fewer_shifts(self):
        alg = TwoPointFiveDGeMM()
        c1 = StackedConfig(PAPER_SHAPE, Mesh2D(16, 16), copies=1)
        c4 = StackedConfig(PAPER_SHAPE, Mesh2D(16, 16), copies=4)
        assert alg.per_chip_traffic_bytes(c4) < alg.per_chip_traffic_bytes(c1)

    def test_timed_program_runs(self):
        cfg = StackedConfig(PAPER_SHAPE, Mesh2D(16, 16), copies=4)
        result = simulate(TwoPointFiveDGeMM().build_program(cfg, TPUV4), TPUV4)
        assert result.makespan > 0

    def test_replica_ring_used(self):
        cfg = StackedConfig(PAPER_SHAPE, Mesh2D(16, 16), copies=4)
        program = TwoPointFiveDGeMM().build_program(cfg, TPUV4)
        assert any(LINK_D in a.exclusive for a in program.activities)

    def test_no_replica_comm_for_single_copy(self):
        cfg = StackedConfig(PAPER_SHAPE, Mesh2D(16, 16), copies=1)
        program = TwoPointFiveDGeMM().build_program(cfg, TPUV4)
        assert not any(LINK_D in a.exclusive for a in program.activities)


class TestMeshSliceDP:
    @pytest.mark.parametrize("copies", [1, 2, 4])
    def test_functional_matches_matmul(self, rng, copies):
        cfg = StackedConfig(
            GeMMShape(32, 24, 32), Mesh2D(2, 2), copies, slices=2
        )
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 24))
        c = MeshSliceDPGeMM().functional(a, b, cfg)
        assert np.allclose(c, a @ b)

    def test_batch_must_divide(self):
        cfg = StackedConfig(GeMMShape(9, 8, 8), Mesh2D(2, 2), copies=2)
        assert MeshSliceDPGeMM().check_support(cfg) is not None

    def test_paper_traffic_number(self):
        """Section 7: ~336 MB per chip on 32x8x4."""
        cfg = StackedConfig(PAPER_SHAPE, Mesh2D(32, 8), copies=4)
        traffic = MeshSliceDPGeMM().per_chip_traffic_bytes(cfg)
        assert traffic == pytest.approx(336e6, rel=0.05)

    def test_beats_25d_traffic_and_time(self):
        """The Section 7 headline, in traffic and in simulated time."""
        c25 = StackedConfig(PAPER_SHAPE, Mesh2D(16, 16), copies=4)
        msdp = StackedConfig(PAPER_SHAPE, Mesh2D(32, 8), copies=4, slices=8)
        traffic_25 = TwoPointFiveDGeMM().per_chip_traffic_bytes(c25)
        traffic_dp = MeshSliceDPGeMM().per_chip_traffic_bytes(msdp)
        assert traffic_25 / traffic_dp > 4.0
        t25 = simulate(TwoPointFiveDGeMM().build_program(c25, TPUV4), TPUV4)
        tdp = simulate(MeshSliceDPGeMM().build_program(msdp, TPUV4), TPUV4)
        assert tdp.makespan < t25.makespan

    def test_dp_allreduce_in_program(self):
        cfg = StackedConfig(PAPER_SHAPE, Mesh2D(32, 8), copies=4, slices=4)
        program = MeshSliceDPGeMM().build_program(cfg, TPUV4)
        labels = [a.label for a in program.activities]
        assert "dp_rds_w" in labels and "dp_ag_w" in labels

    def test_single_copy_has_no_dp_comm(self):
        cfg = StackedConfig(PAPER_SHAPE, Mesh2D(32, 8), copies=1, slices=4)
        program = MeshSliceDPGeMM().build_program(cfg, TPUV4)
        assert not any("dp_" in a.label for a in program.activities)


class TestSquareBases:
    def test_finds_square(self):
        assert square_bases(1024, 4) == [Mesh2D(16, 16)]

    def test_empty_when_impossible(self):
        assert square_bases(512, 4) == []
        assert square_bases(1024, 3) == []
