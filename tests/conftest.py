"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.hw import TPUV4
from repro.mesh import Mesh2D


@pytest.fixture
def rng():
    """Deterministic random generator for numerical tests."""
    return np.random.default_rng(20250706)


@pytest.fixture
def mesh42():
    return Mesh2D(4, 2)


@pytest.fixture
def mesh44():
    return Mesh2D(4, 4)


@pytest.fixture
def hw():
    """The calibrated TPUv4 preset."""
    return TPUV4
