"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.hw import TPUV4
from repro.mesh import Mesh2D


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the pinned golden files instead of comparing",
    )


@pytest.fixture
def update_goldens(request):
    """Whether this run should rewrite golden files (--update-goldens)."""
    return request.config.getoption("--update-goldens")


@pytest.fixture
def rng():
    """Deterministic random generator for numerical tests."""
    return np.random.default_rng(20250706)


@pytest.fixture
def mesh42():
    return Mesh2D(4, 2)


@pytest.fixture
def mesh44():
    return Mesh2D(4, 4)


@pytest.fixture
def hw():
    """The calibrated TPUv4 preset."""
    return TPUV4
