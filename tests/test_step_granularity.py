"""Tests for step-granularity collectives (fidelity validation).

The op-level collective activity is an aggregation of P-1 synchronized
ring steps. Emitting the steps individually must produce the same
duration in isolation and (nearly) the same program makespans — the
check that the representative-chip simulator's aggregation does not
distort the paper's results.
"""

import pytest

from repro.comm import CommCostModel
from repro.hw import TPUV4
from repro.sim import LINK_H, LINK_V, ProgramBuilder, makespan


def _single(granularity, kind="ag", ring=8, shard=10e6):
    builder = ProgramBuilder(TPUV4)
    if kind == "ag":
        builder.allgather("x", ring, shard, LINK_H, granularity=granularity)
    else:
        builder.reducescatter("x", ring, shard, LINK_H, granularity=granularity)
    return builder.build().run()


class TestStepGranularity:
    @pytest.mark.parametrize("kind", ["ag", "rds"])
    def test_isolated_duration_matches_op_level(self, kind):
        op = makespan(_single("op", kind))
        steps = makespan(_single("step", kind))
        assert steps == pytest.approx(op, rel=1e-9)

    def test_matches_cost_model(self):
        spans = _single("step")
        model = CommCostModel(TPUV4).allgather(8, 10e6)
        assert makespan(spans) == pytest.approx(model.total, rel=1e-9)

    def test_step_count(self):
        spans = _single("step", ring=8)
        steps = [s for s in spans if "/step" in s.label]
        assert len(steps) == 7

    def test_single_chip_ring_is_noop(self):
        builder = ProgramBuilder(TPUV4)
        builder.allgather("x", 1, 1e9, LINK_H, granularity="step")
        spans = builder.build().run()
        assert makespan(spans) == 0.0

    def test_overlapped_program_close_to_op_level(self):
        """A MeshSlice-like pipeline gives nearly identical makespans
        at both granularities: the finer steps even overlap slightly
        better, never worse than ~a sync's worth per op."""

        def pipeline(granularity):
            builder = ProgramBuilder(TPUV4)
            slices = 4
            gemm = None
            for s in range(slices):
                ag_a = builder.allgather(
                    f"ag_a[{s}]", 8, 20e6, LINK_H, granularity=granularity
                )
                ag_b = builder.allgather(
                    f"ag_b[{s}]", 32, 4e6, LINK_V, granularity=granularity
                )
                deps = [ag_a, ag_b]
                if gemm is not None:
                    deps.append(gemm)
                gemm = builder.gemm(f"gemm[{s}]", 2048, 2048, 2048, deps=deps)
            return makespan(builder.build().run())

        op_level = pipeline("op")
        step_level = pipeline("step")
        assert step_level == pytest.approx(op_level, rel=0.05)

    def test_no_overlap_policy_respected(self):
        hw = TPUV4.with_overrides(overlap_collectives=False)
        builder = ProgramBuilder(hw)
        builder.allgather("x", 4, 1e6, LINK_V, granularity="step")
        program = builder.build()
        step_acts = [a for a in program.activities if "/step" in a.label]
        assert all("core" in a.exclusive for a in step_acts)
