"""Tests for the shared experiment runners."""

import pytest

from repro.autotuner import plan_model
from repro.experiments import (
    GridPointError,
    best_block_run,
    candidate_meshes,
    end_to_end_step_seconds,
    grid_map,
    render_table,
    run_block,
    weak_scaling_batch,
)
from repro.mesh import Mesh2D
from repro.models import GPT3_175B


class TestCandidateMeshes:
    def test_2d_algorithms_get_factorizations(self):
        meshes = candidate_meshes("meshslice", 16)
        assert Mesh2D(4, 4) in meshes
        assert Mesh2D(1, 16) not in meshes

    def test_1d_algorithms_get_ring(self):
        assert candidate_meshes("1dtp", 64) == [Mesh2D(1, 64)]
        assert candidate_meshes("fsdp", 16) == [Mesh2D(1, 16)]

    def test_cannon_square_only(self):
        assert candidate_meshes("cannon", 64) == [Mesh2D(8, 8)]
        assert candidate_meshes("cannon", 32) == []


class TestRunBlock:
    def test_runs_twelve_gemms(self, hw):
        plans = plan_model(GPT3_175B, GPT3_175B.tokens(8))
        block = run_block("collective", plans, Mesh2D(4, 4), hw)
        assert len(block.results) == 12
        assert block.seconds > 0
        assert 0 < block.utilization(hw) < 1

    def test_flops_match_model(self, hw):
        from repro.models import block_fc_flops

        tokens = GPT3_175B.tokens(8)
        plans = plan_model(GPT3_175B, tokens)
        block = run_block("meshslice", plans, Mesh2D(4, 4), hw)
        assert block.flops_per_chip == pytest.approx(
            block_fc_flops(GPT3_175B, tokens) / 16
        )

    def test_unsupported_config_raises(self, hw):
        plans = plan_model(GPT3_175B, GPT3_175B.tokens(8))
        with pytest.raises(ValueError, match="cannot run"):
            run_block("cannon", plans, Mesh2D(2, 8), hw)


class TestBestBlockRun:
    def test_picks_fastest_mesh(self, hw):
        best = best_block_run("meshslice", GPT3_175B, 8, 16, hw)
        assert best is not None
        for mesh in candidate_meshes("meshslice", 16):
            plans = plan_model(GPT3_175B, GPT3_175B.tokens(8))
            other = run_block("meshslice", plans, mesh, hw)
            assert best.seconds <= other.seconds + 1e-12

    def test_cannon_none_on_nonsquare(self, hw):
        assert best_block_run("cannon", GPT3_175B, 16, 32, hw) is None


class TestHelpers:
    def test_weak_scaling_batch(self):
        assert weak_scaling_batch(256) == 128
        assert weak_scaling_batch(1) == 1

    def test_end_to_end_exceeds_fc_time(self, hw):
        fc_block = 0.05
        total = end_to_end_step_seconds(GPT3_175B, 128, 256, hw, fc_block)
        assert total > GPT3_175B.num_layers * fc_block

    def test_render_table(self):
        table = render_table(
            ["name", "value"], [("a", 1.0), ("b", None), ("c", "x")]
        )
        lines = table.splitlines()
        assert len(lines) == 5
        assert "1.000" in table
        assert "-" in lines[3]  # None renders as dash

    def test_render_table_empty(self):
        table = render_table(["col"], [])
        assert "col" in table


def _double(x):
    return 2 * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


class TestGridMap:
    def test_serial_preserves_order(self):
        assert grid_map(_double, [3, 1, 2], jobs=1) == [6, 2, 4]

    def test_parallel_matches_serial(self):
        points = list(range(8))
        assert grid_map(_double, points, jobs=2) == [2 * p for p in points]

    def test_empty(self):
        assert grid_map(_double, [], jobs=4) == []

    def test_wraps_failures_with_point(self):
        with pytest.raises(GridPointError, match=r"grid point 3 failed"):
            grid_map(_fail_on_three, [1, 2, 3], jobs=1)

    def test_error_carries_point_and_cause(self):
        with pytest.raises(GridPointError) as excinfo:
            grid_map(_fail_on_three, [1, 2, 3], jobs=1)
        assert excinfo.value.point == 3
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert "ValueError: boom" in str(excinfo.value)

    def test_wraps_failures_across_pool(self):
        with pytest.raises(GridPointError, match=r"grid point 3 failed"):
            grid_map(_fail_on_three, [1, 2, 3, 4], jobs=2)

    def test_error_survives_pickling(self):
        import pickle

        try:
            grid_map(_fail_on_three, [3], jobs=1)
        except GridPointError as exc:
            clone = pickle.loads(pickle.dumps(exc))
            assert isinstance(clone, GridPointError)
            assert clone.point == 3
            assert str(clone) == str(exc)
        else:
            pytest.fail("expected GridPointError")


class TestGridMapCollect:
    def test_collect_keeps_slot_order_serial(self):
        out = grid_map(_fail_on_three, [1, 2, 3, 4], jobs=1,
                       on_error="collect")
        assert out[0:2] == [1, 2] and out[3] == 4
        assert isinstance(out[2], GridPointError)
        assert out[2].point == 3

    def test_collect_keeps_slot_order_pooled(self):
        out = grid_map(_fail_on_three, [1, 2, 3, 4, 5, 6], jobs=2,
                       on_error="collect")
        assert [r for r in out if not isinstance(r, GridPointError)] == [
            1, 2, 4, 5, 6
        ]
        assert isinstance(out[2], GridPointError)
        assert out[2].point == 3

    def test_collect_delivers_errors_via_progress(self):
        seen = []
        grid_map(_fail_on_three, [3, 1], jobs=1, on_error="collect",
                 progress=lambda i, r: seen.append((i, r)))
        assert [i for i, _r in seen] == [0, 1]
        assert isinstance(seen[0][1], GridPointError)
        assert seen[1][1] == 1

    def test_raise_mode_still_raises(self):
        with pytest.raises(GridPointError):
            grid_map(_fail_on_three, [3], jobs=1, on_error="raise")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            grid_map(_double, [1], jobs=1, on_error="ignore")
