"""Tests for autotuner Phase 2: mesh-shape x slice-count search."""

import pytest

from repro.autotuner import plan_model, tune, tune_mesh
from repro.hw import TPUV4
from repro.mesh import Mesh2D, mesh_shapes
from repro.models import GPT3_175B, MEGATRON_NLG_530B


class TestTuneMesh:
    def test_tunes_every_pass(self):
        plans = plan_model(GPT3_175B, GPT3_175B.tokens(128))
        tuned, total = tune_mesh(plans, Mesh2D(32, 8), TPUV4)
        assert len(tuned) == 12  # 4 layers x 3 passes
        assert total == pytest.approx(sum(t.estimate.total for t in tuned))

    def test_config_roundtrip(self):
        plans = plan_model(GPT3_175B, GPT3_175B.tokens(128))
        tuned, _ = tune_mesh(plans, Mesh2D(32, 8), TPUV4)
        cfg = tuned[0].config(Mesh2D(32, 8))
        assert cfg.slices == tuned[0].slices
        assert cfg.mesh == Mesh2D(32, 8)


class TestTune:
    def test_selects_minimum_over_meshes(self):
        result = tune(GPT3_175B, batch_size=128, chips=256, hw=TPUV4)
        assert result.per_mesh_seconds[result.mesh.shape] == pytest.approx(
            min(result.per_mesh_seconds.values())
        )

    def test_covers_all_candidate_shapes(self):
        result = tune(GPT3_175B, batch_size=128, chips=256, hw=TPUV4)
        expected = {m.shape for m in mesh_shapes(256, min_dim=2)}
        assert set(result.per_mesh_seconds) == expected

    def test_gpt3_picks_elongated_mesh(self):
        """The input matrix dwarfs the weights, so the tuner elongates
        the batch direction (the paper's 32x8-style shapes)."""
        result = tune(GPT3_175B, batch_size=128, chips=256, hw=TPUV4)
        assert result.mesh.rows > result.mesh.cols

    def test_slices_lookup(self):
        result = tune(GPT3_175B, batch_size=128, chips=64, hw=TPUV4)
        s = result.slices_for("qkv", "fwd")
        assert s >= 1
        with pytest.raises(KeyError):
            result.slices_for("qkv", "sideways")

    def test_explicit_candidates(self):
        result = tune(
            GPT3_175B, batch_size=8, chips=16, hw=TPUV4,
            mesh_candidates=[Mesh2D(4, 4)],
        )
        assert result.mesh == Mesh2D(4, 4)

    def test_no_candidates_rejected(self):
        with pytest.raises(ValueError):
            tune(GPT3_175B, batch_size=8, chips=16, hw=TPUV4, mesh_candidates=[])

    def test_deterministic(self):
        a = tune(MEGATRON_NLG_530B, batch_size=32, chips=64, hw=TPUV4)
        b = tune(MEGATRON_NLG_530B, batch_size=32, chips=64, hw=TPUV4)
        assert a.mesh == b.mesh
        assert a.block_seconds == pytest.approx(b.block_seconds)

    def test_runs_fast(self):
        """The paper: the autotuner finishes in seconds."""
        import time

        start = time.time()
        tune(GPT3_175B, batch_size=128, chips=256, hw=TPUV4)
        assert time.time() - start < 5.0

    def test_dataflow_optimization_never_hurts(self):
        optimized = tune(
            GPT3_175B, batch_size=128, chips=256, hw=TPUV4,
            optimize_dataflow=True,
        )
        default = tune(
            GPT3_175B, batch_size=128, chips=256, hw=TPUV4,
            optimize_dataflow=False,
        )
        assert optimized.block_seconds <= default.block_seconds * 1.001
