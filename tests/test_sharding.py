"""Tests for matrix sharding onto meshes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh import (
    Mesh2D,
    gather_matrix,
    shard_cols,
    shard_matrix,
    shard_rows,
    shardable,
    zeros_like_sharded,
)


class TestShardMatrix:
    def test_roundtrip(self, rng):
        mesh = Mesh2D(3, 4)
        matrix = rng.standard_normal((12, 8))
        sharded = shard_matrix(matrix, mesh)
        assert np.array_equal(gather_matrix(sharded), matrix)

    def test_shard_placement(self, rng):
        mesh = Mesh2D(2, 2)
        matrix = np.arange(16).reshape(4, 4)
        sharded = shard_matrix(matrix, mesh)
        assert np.array_equal(sharded.shard((0, 0)), [[0, 1], [4, 5]])
        assert np.array_equal(sharded.shard((1, 1)), [[10, 11], [14, 15]])

    def test_shard_shape(self):
        mesh = Mesh2D(2, 4)
        sharded = shard_matrix(np.zeros((8, 8)), mesh)
        assert sharded.shard_shape == (4, 2)

    def test_rejects_nondividing(self):
        with pytest.raises(ValueError, match="does not divide"):
            shard_matrix(np.zeros((5, 4)), Mesh2D(2, 2))

    def test_rejects_non2d(self):
        with pytest.raises(ValueError, match="2D"):
            shard_matrix(np.zeros(8), Mesh2D(2, 2))

    def test_shardable(self):
        assert shardable((8, 6), Mesh2D(4, 3))
        assert not shardable((8, 6), Mesh2D(3, 3))

    def test_shards_are_contiguous_copies(self, rng):
        mesh = Mesh2D(2, 2)
        matrix = rng.standard_normal((4, 4))
        sharded = shard_matrix(matrix, mesh)
        sharded.shards[(0, 0)][0, 0] = 99.0
        assert matrix[0, 0] != 99.0

    def test_copy_is_deep(self, rng):
        sharded = shard_matrix(rng.standard_normal((4, 4)), Mesh2D(2, 2))
        clone = sharded.copy()
        clone.shards[(0, 0)][0, 0] = 7.0
        assert sharded.shard((0, 0))[0, 0] != 7.0

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(1, 4),
        cols=st.integers(1, 4),
        row_mult=st.integers(1, 5),
        col_mult=st.integers(1, 5),
    )
    def test_roundtrip_property(self, rows, cols, row_mult, col_mult):
        mesh = Mesh2D(rows, cols)
        matrix = np.arange(rows * row_mult * cols * col_mult, dtype=float)
        matrix = matrix.reshape(rows * row_mult, cols * col_mult)
        assert np.array_equal(gather_matrix(shard_matrix(matrix, mesh)), matrix)


class TestZerosLike:
    def test_zeros(self):
        sharded = zeros_like_sharded((6, 4), Mesh2D(3, 2))
        assert sharded.shard_shape == (2, 2)
        assert all(not s.any() for s in sharded.shards.values())

    def test_rejects_nondividing(self):
        with pytest.raises(ValueError):
            zeros_like_sharded((5, 4), Mesh2D(2, 2))


class TestOneDSharding:
    def test_shard_rows_roundtrip(self, rng):
        matrix = rng.standard_normal((8, 3))
        shards = shard_rows(matrix, 4)
        assert np.array_equal(np.concatenate(list(shards.values())), matrix)

    def test_shard_cols_roundtrip(self, rng):
        matrix = rng.standard_normal((3, 8))
        shards = shard_cols(matrix, 2)
        assert np.array_equal(
            np.concatenate(list(shards.values()), axis=1), matrix
        )

    def test_rejects_nondividing(self):
        with pytest.raises(ValueError):
            shard_rows(np.zeros((7, 2)), 2)
        with pytest.raises(ValueError):
            shard_cols(np.zeros((2, 7)), 2)
