"""Tests for the logical-mesh / shared-NIC network extension (Sec. 6)."""


import pytest

from repro.algorithms import GeMMConfig, get_algorithm
from repro.autotuner.costmodel import meshslice_estimate
from repro.core import Dataflow, GeMMShape
from repro.hw import GPU_LOGICAL_MESH, TPUV4, HardwareParams
from repro.mesh import Mesh2D
from repro.sim import LINK_H, LINK_V, NIC, ProgramBuilder, simulate

BIG = GeMMShape(m=262144, n=49152, k=12288)


class TestHardwareValidation:
    def test_shared_nic_requires_bandwidth(self):
        with pytest.raises(ValueError, match="nic_bandwidth"):
            HardwareParams(network="shared-nic", nic_bandwidth=0.0)

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError, match="network"):
            HardwareParams(network="infiniband")

    def test_preset(self):
        assert GPU_LOGICAL_MESH.has_shared_nic
        assert not TPUV4.has_shared_nic


class TestNICContention:
    def _two_collectives(self, hw):
        builder = ProgramBuilder(hw)
        builder.allgather("ag_h", 8, 100e6, LINK_H)
        builder.allgather("ag_v", 8, 100e6, LINK_V)
        return builder.build().run()

    def test_torus_directions_independent(self):
        spans = self._two_collectives(TPUV4)
        ends = [s.end for s in spans]
        starts = [s.start for s in spans]
        # Fully parallel: both start at 0 and take the nominal time.
        assert max(starts) == pytest.approx(0.0)
        assert max(ends) == pytest.approx(min(ends), rel=0.01)

    def test_shared_nic_stretches_concurrent_collectives(self):
        torus_spans = self._two_collectives(TPUV4)
        logical_spans = self._two_collectives(
            TPUV4.with_overrides(network="shared-nic", nic_bandwidth=120e9)
        )
        assert max(s.end for s in logical_spans) > max(
            s.end for s in torus_spans
        ) * 1.2

    def test_single_collective_unaffected_when_under_capacity(self):
        roomy = TPUV4.with_overrides(
            network="shared-nic", nic_bandwidth=1e12
        )
        builder = ProgramBuilder(roomy)
        builder.allgather("ag", 8, 100e6, LINK_H)
        spans = builder.build().run()
        builder2 = ProgramBuilder(TPUV4)
        builder2.allgather("ag", 8, 100e6, LINK_H)
        reference = builder2.build().run()
        assert spans[0].end == pytest.approx(reference[0].end, rel=1e-6)

    def test_nic_capacity_registered(self):
        builder = ProgramBuilder(GPU_LOGICAL_MESH)
        program = builder.build()
        assert program.shared_capacities[NIC] == GPU_LOGICAL_MESH.nic_bandwidth


class TestMeshSliceOnLogicalMesh:
    def test_slower_than_torus(self):
        alg = get_algorithm("meshslice")
        cfg = GeMMConfig(BIG, Mesh2D(16, 16), Dataflow.OS, slices=8)
        torus = simulate(alg.build_program(cfg, TPUV4), TPUV4)
        logical = simulate(
            alg.build_program(cfg, GPU_LOGICAL_MESH), GPU_LOGICAL_MESH
        )
        assert logical.makespan > torus.makespan

    def test_cost_model_contention_extension(self):
        """The Section 6 autotuner modification: the analytical model
        inflates concurrent collective times under a shared NIC. The
        work-conserving NIC bound binds when the two directions carry
        comparable, compute-dominating traffic."""
        balanced = GeMMShape(m=65536, n=65536, k=1024)
        cfg = GeMMConfig(balanced, Mesh2D(16, 16), Dataflow.OS, slices=4)
        torus_est = meshslice_estimate(cfg, TPUV4)
        logical_est = meshslice_estimate(
            cfg, TPUV4.with_overrides(network="shared-nic", nic_bandwidth=120e9)
        )
        assert logical_est.total > torus_est.total

    def test_cost_model_tracks_simulation_under_contention(self):
        alg = get_algorithm("meshslice")
        for slices in (2, 8):
            cfg = GeMMConfig(BIG, Mesh2D(16, 16), Dataflow.OS, slices=slices)
            est = meshslice_estimate(cfg, GPU_LOGICAL_MESH).total
            sim = simulate(
                alg.build_program(cfg, GPU_LOGICAL_MESH), GPU_LOGICAL_MESH
            ).makespan
            assert est == pytest.approx(sim, rel=0.35)


class TestAblationExperiment:
    def test_everyone_degrades_and_meshslice_still_wins(self):
        from repro.experiments.ablation_logical_mesh import run

        rows = run(chips=16)
        by_alg = {r.algorithm: r for r in rows}
        for row in rows:
            assert row.degradation is not None
            assert row.degradation >= -0.02  # never faster on logical
        assert (
            by_alg["meshslice"].logical_utilization
            > by_alg["collective"].logical_utilization
        )

    def test_cost_model_agreement_under_contention(self):
        from repro.experiments.ablation_logical_mesh import cost_model_agreement

        est, sim = cost_model_agreement(chips=16)
        assert est == sim
