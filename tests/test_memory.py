"""Tests for the per-chip memory footprint model."""

import pytest

from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.models import GPT3_175B, MEGATRON_NLG_530B
from repro.models.memory import (
    MemoryEstimate,
    max_feasible_batch,
    training_memory,
)


class TestTrainingMemory:
    def test_total_is_sum_of_parts(self):
        est = training_memory(GPT3_175B, 8, Mesh2D(16, 16))
        assert est.total == pytest.approx(
            est.weights + est.gradients + est.optimizer
            + est.activations + est.comm_buffers
        )

    def test_weights_shard_over_mesh(self):
        small = training_memory(GPT3_175B, 8, Mesh2D(4, 4))
        large = training_memory(GPT3_175B, 8, Mesh2D(16, 16))
        assert small.weights == pytest.approx(16 * large.weights)

    def test_activations_scale_with_batch(self):
        b8 = training_memory(GPT3_175B, 8, Mesh2D(16, 16))
        b32 = training_memory(GPT3_175B, 32, Mesh2D(16, 16))
        assert b32.activations == pytest.approx(4 * b8.activations)

    def test_gpt3_weights_match_param_count(self):
        est = training_memory(GPT3_175B, 1, Mesh2D(1, 1))
        assert est.weights == pytest.approx(
            GPT3_175B.approx_params * 2, rel=0.01
        )

    def test_more_slices_smaller_buffers(self):
        coarse = training_memory(GPT3_175B, 8, Mesh2D(16, 16), slices=1)
        fine = training_memory(GPT3_175B, 8, Mesh2D(16, 16), slices=16)
        assert fine.comm_buffers < coarse.comm_buffers

    def test_rejects_bad_slices(self):
        with pytest.raises(ValueError):
            training_memory(GPT3_175B, 8, Mesh2D(4, 4), slices=0)

    def test_fits_honors_reserve(self):
        est = MemoryEstimate(1e9, 1e9, 1e9, 1e9, 1e9)
        roomy = TPUV4.with_overrides(hbm_capacity=10e9)
        tight = TPUV4.with_overrides(hbm_capacity=5.2e9)
        assert est.fits(roomy)
        assert not est.fits(tight, reserve_fraction=0.1)
        with pytest.raises(ValueError):
            est.fits(roomy, reserve_fraction=1.0)


class TestFeasibility:
    def test_gpt3_needs_a_big_mesh(self):
        """Pure-TP GPT-3 training does not fit 8 chips but fits 256 —
        the Section 2.2 weak-scaling premise."""
        assert max_feasible_batch(GPT3_175B, Mesh2D(4, 2), TPUV4) is None
        batch = max_feasible_batch(GPT3_175B, Mesh2D(32, 8), TPUV4)
        assert batch is not None
        assert batch >= 128  # the paper's 256-chip weak-scaling batch

    def test_megatron_needs_more_than_256(self):
        """530B with full optimizer state exceeds 256 chips' HBM, which
        is why Megatron-NLG trains with pipeline parallelism too."""
        assert max_feasible_batch(MEGATRON_NLG_530B, Mesh2D(32, 8), TPUV4) is None

    def test_feasible_batch_is_maximal(self):
        batch = max_feasible_batch(GPT3_175B, Mesh2D(32, 8), TPUV4)
        assert training_memory(GPT3_175B, batch, Mesh2D(32, 8)).fits(TPUV4)
        assert not training_memory(
            GPT3_175B, batch + 1, Mesh2D(32, 8)
        ).fits(TPUV4)
