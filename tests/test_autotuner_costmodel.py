"""Tests for autotuner Phase 2: the analytical cost models."""

import dataclasses

import pytest

from repro.algorithms import GeMMConfig, get_algorithm
from repro.autotuner import (
    best_slice_count,
    best_sliced_slice_count,
    collective_estimate,
    meshslice_estimate,
    sliced_estimate,
    valid_slice_counts_for,
)
from repro.core import Dataflow, GeMMShape
from repro.hw import TPUV4, TPUV4_CLOUD_4X4
from repro.mesh import Mesh2D
from repro.sim import simulate

BIG = GeMMShape(m=262144, n=49152, k=12288)


class TestMeshSliceEstimate:
    def test_total_formula(self):
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS, slices=8)
        est = meshslice_estimate(cfg, TPUV4)
        assert est.total == pytest.approx(
            est.prologue + 7 * est.steady + est.epilogue
        )

    def test_flops_per_chip(self):
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS, slices=8)
        est = meshslice_estimate(cfg, TPUV4)
        assert est.flops_per_chip == pytest.approx(BIG.flops / 256)

    def test_utilization_bounded(self):
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS, slices=8)
        util = meshslice_estimate(cfg, TPUV4).flop_utilization(TPUV4)
        assert 0.0 < util < 1.0

    def test_tracks_simulation_within_tolerance(self):
        """The estimate must be close enough to rank configurations."""
        alg = get_algorithm("meshslice")
        for slices in (2, 8, 32):
            cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS, slices=slices)
            est = meshslice_estimate(cfg, TPUV4).total
            sim = simulate(alg.build_program(cfg, TPUV4), TPUV4).makespan
            assert est == pytest.approx(sim, rel=0.25)

    def test_no_overlap_mode_serializes(self):
        cfg = GeMMConfig(BIG, Mesh2D(4, 4), Dataflow.OS, slices=4)
        overlapped = meshslice_estimate(cfg, TPUV4.with_overrides(
            links_per_direction=1))
        serial = meshslice_estimate(cfg, TPUV4.with_overrides(
            links_per_direction=1, overlap_collectives=False))
        assert serial.total > overlapped.total

    def test_ls_dataflow_includes_epilogue_scatter(self):
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.LS, slices=8)
        est = meshslice_estimate(cfg, TPUV4)
        os_est = meshslice_estimate(
            dataclasses.replace(cfg, dataflow=Dataflow.OS), TPUV4
        )
        # LS's epilogue carries the final ReduceScatter.
        assert est.epilogue > 0
        assert os_est.epilogue > 0


class TestCollectiveEstimate:
    def test_close_to_simulated_collective(self):
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS, slices=1)
        est = collective_estimate(cfg, TPUV4).total
        sim = simulate(
            get_algorithm("collective").build_program(cfg, TPUV4), TPUV4
        ).makespan
        assert est == pytest.approx(sim, rel=0.15)

    def test_meshslice_s1_close_to_collective(self):
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS, slices=1)
        ms = meshslice_estimate(cfg, TPUV4).total
        coll = collective_estimate(cfg, TPUV4).total
        assert ms == pytest.approx(coll, rel=0.10)


class TestValidSliceCounts:
    def test_divides_both_local_extents(self):
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS, slices=1)
        counts = valid_slice_counts_for(cfg, max_slices=64)
        k = BIG.k
        for s in counts:
            assert (k // 32) % s == 0
            assert (k // 8) % s == 0

    def test_capped(self):
        cfg = GeMMConfig(BIG, Mesh2D(4, 4), Dataflow.OS, slices=1)
        assert max(valid_slice_counts_for(cfg, max_slices=16)) <= 16

    def test_always_contains_one(self):
        cfg = GeMMConfig(GeMMShape(7, 11, 13), Mesh2D(4, 4), Dataflow.OS)
        assert valid_slice_counts_for(cfg) == [1]

    def test_respects_sliced_dimension(self):
        """LS slices N, so the counts derive from N, not K."""
        shape = GeMMShape(m=256, n=4096, k=17)
        cfg = GeMMConfig(shape, Mesh2D(4, 4), Dataflow.LS)
        counts = valid_slice_counts_for(cfg)
        assert len(counts) > 1  # N/4 = 1024 has many divisors


class TestBestSliceCount:
    def test_returns_argmin_of_estimate(self):
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS, slices=1)
        best_s, best_est = best_slice_count(cfg, TPUV4)
        for s in valid_slice_counts_for(cfg):
            est = meshslice_estimate(
                dataclasses.replace(cfg, slices=s), TPUV4
            )
            assert best_est.total <= est.total + 1e-12

    def test_interior_optimum_for_comm_heavy(self):
        """Neither S=1 nor the cap should win on a comm-heavy GeMM."""
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS, slices=1)
        best_s, _ = best_slice_count(cfg, TPUV4, max_slices=64)
        assert 1 < best_s <= 64

    def test_no_overlap_machine_prefers_coarse(self):
        """Without overlap, slicing only adds overhead -> S = 1."""
        cfg = GeMMConfig(BIG, Mesh2D(4, 4), Dataflow.OS, slices=1)
        best_s, _ = best_slice_count(cfg, TPUV4_CLOUD_4X4)
        assert best_s == 1


class TestSlicedEstimate:
    def test_total_formula(self):
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS, slices=8)
        est = sliced_estimate(cfg, TPUV4)
        assert est.total == pytest.approx(
            est.prologue + 7 * est.steady + est.epilogue
        )

    def test_tracks_simulation_within_tolerance(self):
        """Close enough to the one-sided program to rank slice counts."""
        alg = get_algorithm("sliced")
        for slices in (2, 8, 32):
            cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS, slices=slices)
            est = sliced_estimate(cfg, TPUV4).total
            sim = simulate(alg.build_program(cfg, TPUV4), TPUV4).makespan
            assert est == pytest.approx(sim, rel=0.30)

    def test_abft_rejected(self):
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS, slices=8, abft=True)
        with pytest.raises(ValueError, match="ABFT"):
            sliced_estimate(cfg, TPUV4)

    def test_no_overlap_mode_serializes(self):
        cfg = GeMMConfig(BIG, Mesh2D(4, 4), Dataflow.OS, slices=4)
        overlapped = sliced_estimate(cfg, TPUV4.with_overrides(
            links_per_direction=1))
        serial = sliced_estimate(cfg, TPUV4.with_overrides(
            links_per_direction=1, overlap_collectives=False))
        assert serial.total > overlapped.total


class TestBestSlicedSliceCount:
    def test_returns_argmin_of_estimate(self):
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS, slices=1)
        _best_s, best_est = best_sliced_slice_count(cfg, TPUV4)
        for s in valid_slice_counts_for(cfg):
            est = sliced_estimate(
                dataclasses.replace(cfg, slices=s), TPUV4
            )
            assert best_est.total <= est.total + 1e-12

    def test_latency_bound_divergence(self):
        """One-sided slicing out-slices MeshSlice when syncs dominate.

        Pinned regime: a comm-heavy GeMM on a 16x16 torus with 10x the
        TPU sync latency. Each extra slice costs a ring collective
        ``P - 1 = 15`` sync steps per direction but a fence only
        ``ceil(log2 256) = 8`` rounds total, so the one-sided optimum
        sits strictly above MeshSlice's. Guards against regressing to
        the pre-elastic behaviour of borrowing MeshSlice's S for the
        sliced candidate.
        """
        hw = TPUV4.with_overrides(t_sync=4e-5)
        cfg = GeMMConfig(BIG, Mesh2D(16, 16), Dataflow.OS, slices=1)
        ms_s, _ = best_slice_count(cfg, hw)
        os_s, _ = best_sliced_slice_count(cfg, hw)
        assert ms_s == 3
        assert os_s == 6
        assert os_s > ms_s
