"""Property tests: the analytical cost model tracks the simulator.

The autotuner's usefulness rests on the cost model *ranking*
configurations like the simulator does (Section 5.2). These tests fuzz
configurations and check both absolute closeness (loose band) and
ranking fidelity (tight requirement) across mesh shapes and slice
counts.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import GeMMConfig, get_algorithm
from repro.autotuner.costmodel import (
    best_slice_count,
    meshslice_estimate,
    valid_slice_counts_for,
)
from repro.core import Dataflow, GeMMShape
from repro.hw import TPUV4
from repro.mesh import Mesh2D, mesh_shapes
from repro.sim import simulate

ALG = get_algorithm("meshslice")


def _simulate(cfg):
    return simulate(ALG.build_program(cfg, TPUV4), TPUV4).makespan


class TestAbsoluteAccuracy:
    @settings(max_examples=25, deadline=None)
    @given(
        m=st.sampled_from([16384, 65536, 262144]),
        n=st.sampled_from([12288, 49152]),
        k=st.sampled_from([12288, 49152]),
        rows=st.sampled_from([4, 8, 16, 32]),
        slices=st.sampled_from([1, 2, 4, 8, 16]),
        dataflow=st.sampled_from(list(Dataflow)),
    )
    def test_estimate_within_band(self, m, n, k, rows, slices, dataflow):
        mesh = Mesh2D(rows, 256 // rows)
        cfg = GeMMConfig(GeMMShape(m, n, k), mesh, dataflow, slices=slices)
        if not ALG.supports(cfg):
            return
        est = meshslice_estimate(cfg, TPUV4).total
        sim = _simulate(cfg)
        assert est == pytest.approx(sim, rel=0.30)


class TestRankingFidelity:
    @settings(max_examples=10, deadline=None)
    @given(
        m=st.sampled_from([65536, 262144]),
        n=st.sampled_from([12288, 49152]),
        dataflow=st.sampled_from([Dataflow.OS, Dataflow.LS]),
    )
    def test_slice_count_optimum_within_one_step(self, m, n, dataflow):
        """The estimated-optimal S is simulated-(near-)optimal: its
        simulated time is within 5% of the simulated best."""
        shape = GeMMShape(m, n, 12288)
        mesh = Mesh2D(32, 8)
        base = GeMMConfig(shape, mesh, dataflow, slices=1)
        counts = [
            s for s in valid_slice_counts_for(base, max_slices=32)
        ]
        if len(counts) < 2:
            return
        est_best, _ = best_slice_count(base, TPUV4, max_slices=32)
        sims = {
            s: _simulate(dataclasses.replace(base, slices=s)) for s in counts
        }
        sim_best_time = min(sims.values())
        assert sims[est_best] <= sim_best_time * 1.05

    def test_mesh_ranking_spearman_positive(self):
        """Across all 256-chip shapes, the estimate's ordering strongly
        correlates with the simulator's."""
        shape = GeMMShape(262144, 49152, 12288)
        est_times, sim_times = [], []
        for mesh in mesh_shapes(256, min_dim=2):
            cfg = GeMMConfig(shape, mesh, Dataflow.OS, slices=8)
            if not ALG.supports(cfg):
                continue
            est_times.append(meshslice_estimate(cfg, TPUV4).total)
            sim_times.append(_simulate(cfg))
        est_rank = _ranks(est_times)
        sim_rank = _ranks(sim_times)
        n = len(est_rank)
        d2 = sum((a - b) ** 2 for a, b in zip(est_rank, sim_rank))
        spearman = 1 - 6 * d2 / (n * (n * n - 1))
        assert spearman > 0.9


def _ranks(values):
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0] * len(values)
    for rank, index in enumerate(order):
        ranks[index] = rank
    return ranks
