"""Bit-exact verification of the baseline distributed GeMM algorithms."""

import numpy as np
import pytest

from repro.algorithms import GeMMConfig, algorithm_names, get_algorithm
from repro.core import Dataflow, GeMMShape
from repro.mesh import Mesh2D


def _cfg(shape, mesh, dataflow=Dataflow.OS, slices=1):
    return GeMMConfig(GeMMShape(*shape), mesh, dataflow, slices)


class TestRegistry:
    def test_all_algorithms_registered(self):
        assert algorithm_names() == (
            "1dtp", "cannon", "collective", "fsdp", "meshslice", "sfc",
            "sliced", "summa", "wang",
        )

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            get_algorithm("nope")

    def test_repr(self):
        assert "meshslice" in repr(get_algorithm("meshslice"))


class TestCannonFunctional:
    @pytest.mark.parametrize("side", [1, 2, 3, 4])
    def test_matches_matmul(self, rng, side):
        mesh = Mesh2D(side, side)
        m, n, k = 12 * side, 12 * side, 12 * side
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c = get_algorithm("cannon").functional(a, b, _cfg((m, n, k), mesh))
        assert np.allclose(c, a @ b)

    def test_rejects_rectangular_mesh(self, rng):
        alg = get_algorithm("cannon")
        cfg = _cfg((8, 8, 8), Mesh2D(2, 4))
        assert not alg.supports(cfg)
        with pytest.raises(ValueError, match="square"):
            alg.functional(np.zeros((8, 8)), np.zeros((8, 8)), cfg)

    def test_rejects_non_os_dataflow(self):
        alg = get_algorithm("cannon")
        cfg = _cfg((8, 8, 8), Mesh2D(2, 2), Dataflow.LS)
        assert alg.check_support(cfg) is not None

    def test_rejects_contraction_mismatch(self, rng):
        with pytest.raises(ValueError, match="contraction"):
            get_algorithm("cannon").functional(
                rng.standard_normal((4, 6)),
                rng.standard_normal((8, 4)),
                _cfg((4, 4, 6), Mesh2D(2, 2)),
            )


class TestSummaFunctional:
    @pytest.mark.parametrize(
        "mesh", [Mesh2D(1, 1), Mesh2D(2, 2), Mesh2D(2, 4), Mesh2D(3, 2)], ids=str
    )
    def test_os(self, rng, mesh):
        m, n = mesh.rows * 6, mesh.cols * 6
        k = mesh.rows * mesh.cols * 12
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        alg = get_algorithm("summa")
        assert np.allclose(alg.functional(a, b, _cfg((m, n, k), mesh)), a @ b)

    @pytest.mark.parametrize("mesh", [Mesh2D(2, 2), Mesh2D(4, 2)], ids=str)
    def test_ls(self, rng, mesh):
        m, k = mesh.rows * 6, mesh.cols * 6
        n = mesh.rows * mesh.cols * 12
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((n, k))
        alg = get_algorithm("summa")
        c = alg.functional(a, b, _cfg((m, n, k), mesh, Dataflow.LS))
        assert np.allclose(c, a @ b.T)

    @pytest.mark.parametrize("mesh", [Mesh2D(2, 2), Mesh2D(2, 4)], ids=str)
    def test_rs(self, rng, mesh):
        k, n = mesh.rows * 6, mesh.cols * 6
        m = mesh.rows * mesh.cols * 12
        a = rng.standard_normal((k, m))
        b = rng.standard_normal((k, n))
        alg = get_algorithm("summa")
        c = alg.functional(a, b, _cfg((m, n, k), mesh, Dataflow.RS))
        assert np.allclose(c, a.T @ b)

    def test_rejects_unaligned_panels(self, rng):
        mesh = Mesh2D(2, 3)  # lcm 6 does not divide k = 8
        a = rng.standard_normal((6, 8))
        b = rng.standard_normal((8, 6))
        with pytest.raises(ValueError, match="lcm"):
            get_algorithm("summa").functional(a, b, _cfg((6, 6, 8), mesh))

    def test_rejects_bad_packet_size(self):
        from repro.algorithms.summa import SummaGeMM

        with pytest.raises(ValueError):
            SummaGeMM(packet_bytes=0)


class TestWangFunctional:
    @pytest.mark.parametrize(
        "mesh", [Mesh2D(1, 1), Mesh2D(2, 2), Mesh2D(2, 4), Mesh2D(4, 2)], ids=str
    )
    def test_os(self, rng, mesh):
        m, n = mesh.rows * 4, mesh.cols * 4
        k = mesh.cols * mesh.rows * 8
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        alg = get_algorithm("wang")
        assert np.allclose(alg.functional(a, b, _cfg((m, n, k), mesh)), a @ b)

    def test_non_os_not_implemented(self, rng):
        alg = get_algorithm("wang")
        with pytest.raises(NotImplementedError):
            alg.functional(
                np.zeros((4, 4)), np.zeros((4, 4)),
                _cfg((4, 4, 4), Mesh2D(2, 2), Dataflow.LS),
            )


class TestOneDFunctional:
    @pytest.mark.parametrize("chips", [1, 2, 4, 8])
    def test_1dtp_gather_input(self, rng, chips):
        ring = Mesh2D(1, chips)
        m, n, k = chips * 4, chips * 4, 16
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        alg = get_algorithm("1dtp")
        assert np.allclose(alg.functional(a, b, _cfg((m, n, k), ring)), a @ b)

    def test_1dtp_scatter_output_path(self, rng):
        """A >> C selects the reduce-scatter variant."""
        chips = 4
        ring = Mesh2D(1, chips)
        m, n, k = 8, 4, 64  # a_bytes = m*k >> c_bytes = m*n
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        alg = get_algorithm("1dtp")
        cfg = _cfg((m, n, k), ring)
        assert cfg.shape.a_bytes > cfg.shape.c_bytes
        assert np.allclose(alg.functional(a, b, cfg), a @ b)

    @pytest.mark.parametrize("chips", [1, 2, 4])
    def test_fsdp(self, rng, chips):
        ring = Mesh2D(1, chips)
        m, n, k = chips * 4, 12, chips * 8
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        alg = get_algorithm("fsdp")
        assert np.allclose(alg.functional(a, b, _cfg((m, n, k), ring)), a @ b)

    def test_contraction_mismatch(self, rng):
        for name in ("1dtp", "fsdp"):
            with pytest.raises(ValueError, match="contraction"):
                get_algorithm(name).functional(
                    rng.standard_normal((4, 6)),
                    rng.standard_normal((8, 4)),
                    _cfg((4, 4, 6), Mesh2D(1, 2)),
                )


class TestCrossAlgorithmAgreement:
    """All OS-capable algorithms must produce identical results."""

    def test_all_agree(self, rng):
        mesh = Mesh2D(2, 2)
        m, n, k = 16, 16, 16
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        reference = a @ b
        for name in ("meshslice", "cannon", "summa", "collective", "wang"):
            cfg = _cfg((m, n, k), mesh, Dataflow.OS, slices=2)
            if name in ("collective",):
                cfg = _cfg((m, n, k), mesh, Dataflow.OS, slices=1)
            out = get_algorithm(name).functional(a, b, cfg)
            assert np.allclose(out, reference), name
