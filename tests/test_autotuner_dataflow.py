"""Tests for autotuner Phase 1: dataflow and sharding selection."""

import pytest

from repro.autotuner import (
    PASSES,
    choose_stationary,
    pass_plans,
    plan_layer,
    plan_model,
)
from repro.core import Dataflow
from repro.models import GPT3_175B, MEGATRON_NLG_530B
from repro.models.layers import FCLayer


class TestChooseStationary:
    def test_largest_matrix_wins(self):
        # Y = tokens x out is largest.
        assert choose_stationary(tokens=1000, in_dim=10, out_dim=100) == "Y"
        # X = tokens x in is largest.
        assert choose_stationary(tokens=1000, in_dim=100, out_dim=10) == "X"
        # W = in x out is largest.
        assert choose_stationary(tokens=10, in_dim=1000, out_dim=1000) == "W"

    def test_tie_prefers_y(self):
        assert choose_stationary(tokens=100, in_dim=100, out_dim=100) == "Y"


class TestPassPlans:
    @pytest.mark.parametrize("stationary", ["Y", "X", "W"])
    def test_three_passes(self, stationary):
        plans = pass_plans(stationary, 64, 32, 16)
        assert [p.pass_name for p in plans] == list(PASSES)

    def test_y_stationary_row(self):
        """Table 1 row 1: OS fwd, LS bwd-data, RS bwd-weight."""
        fwd, bwd_data, bwd_weight = pass_plans("Y", 64, in_dim=32, out_dim=16)
        assert fwd.dataflow is Dataflow.OS
        assert fwd.shape.as_tuple() == (64, 16, 32)
        assert bwd_data.dataflow is Dataflow.LS
        assert bwd_data.shape.as_tuple() == (64, 32, 16)
        assert bwd_weight.dataflow is Dataflow.RS
        assert bwd_weight.shape.as_tuple() == (32, 16, 64)

    def test_x_stationary_row(self):
        fwd, bwd_data, bwd_weight = pass_plans("X", 64, in_dim=32, out_dim=16)
        assert fwd.dataflow is Dataflow.LS
        assert bwd_data.dataflow is Dataflow.OS
        assert bwd_weight.dataflow is Dataflow.RS
        # X-stn backward-weight computes the transposed product W'ᵀ.
        assert bwd_weight.shape.as_tuple() == (16, 32, 64)

    def test_w_stationary_row(self):
        fwd, bwd_data, bwd_weight = pass_plans("W", 64, in_dim=32, out_dim=16)
        assert fwd.dataflow is Dataflow.RS
        assert bwd_data.dataflow is Dataflow.LS
        assert bwd_data.shape.as_tuple() == (32, 64, 16)
        assert bwd_weight.dataflow is Dataflow.OS
        assert bwd_weight.shape.as_tuple() == (32, 16, 64)

    def test_flops_identical_across_passes(self):
        """Fwd/bwd-data/bwd-weight have the same compute (Sec. 3.2.1)."""
        for stationary in ("Y", "X", "W"):
            plans = pass_plans(stationary, 128, 64, 32)
            flops = {p.shape.flops for p in plans}
            assert len(flops) == 1

    def test_transposed_variant(self):
        plans = pass_plans("Y", 64, 32, 16, transposed=True)
        assert all(p.transposed for p in plans)
        assert plans[0].shape.as_tuple() == (16, 64, 32)

    def test_rejects_unknown_stationary(self):
        with pytest.raises(ValueError):
            pass_plans("Z", 1, 1, 1)


class TestPlanLayer:
    def test_auto_selects_stationary(self):
        layer = FCLayer("ffn_out", in_dim=4096, out_dim=1024)
        plan, orientation = plan_layer(layer, tokens=65536)
        assert plan.stationary == "X"  # X = tokens x 4096 is largest
        assert orientation == "N"
        assert not plan.passes[0].transposed

    def test_w_stationary_forces_transposed_variant(self):
        """With normal input, a W-stationary layer must transpose."""
        layer = FCLayer("tiny", in_dim=4096, out_dim=4096)
        plan, orientation = plan_layer(layer, tokens=8, input_orientation="N")
        assert plan.stationary == "W"
        assert plan.passes[0].transposed
        assert orientation == "T"

    def test_w_stationary_with_transposed_input(self):
        layer = FCLayer("tiny", in_dim=4096, out_dim=4096)
        plan, orientation = plan_layer(layer, tokens=8, input_orientation="T")
        assert not plan.passes[0].transposed
        assert orientation == "N"

    def test_pass_plan_lookup(self):
        layer = FCLayer("qkv", 64, 192)
        plan, _ = plan_layer(layer, tokens=256)
        assert plan.pass_plan("fwd").pass_name == "fwd"
        with pytest.raises(KeyError):
            plan.pass_plan("sideways")


class TestPlanModel:
    @pytest.mark.parametrize("model", [GPT3_175B, MEGATRON_NLG_530B], ids=str)
    def test_no_transpositions_in_llms(self, model):
        """The paper's heuristic eliminates transpositions in LLMs."""
        plans = plan_model(model, tokens=model.tokens(128))
        assert all(not p.passes[0].transposed for p in plans)

    def test_optimized_picks_x_stationary_for_ffn_out(self):
        """The FFN output layer's input (tokens x 4H) dominates."""
        plans = plan_model(GPT3_175B, tokens=GPT3_175B.tokens(128))
        by_name = {p.layer.name: p for p in plans}
        assert by_name["ffn_out"].stationary == "X"
        assert by_name["qkv"].stationary == "Y"

    def test_default_is_all_y_stationary(self):
        plans = plan_model(
            GPT3_175B, tokens=GPT3_175B.tokens(128), optimize_dataflow=False
        )
        assert all(p.stationary == "Y" for p in plans)

    def test_all_passes_present(self):
        plans = plan_model(GPT3_175B, tokens=2048)
        assert len(plans) == 4
        assert all(len(p.passes) == 3 for p in plans)
