"""Tests for program construction and the hardware overlap policy."""

import pytest

from repro.hw import TPUV4, TPUV4_CLOUD_4X4
from repro.sim import CORE, LINK_H, LINK_V, ProgramBuilder


class TestComputeActivities:
    def test_gemm_claims_core(self, hw):
        builder = ProgramBuilder(hw)
        builder.gemm("g", 64, 64, 64)
        program = builder.build()
        assert program.activities[0].exclusive == (CORE,)
        assert program.activities[0].meta["flops"] > 0

    def test_slice_copy_claims_core(self, hw):
        builder = ProgramBuilder(hw)
        builder.slice_copy("s", 1e6)
        assert builder.build().activities[0].kind == "slice"

    def test_total_flops(self, hw):
        builder = ProgramBuilder(hw)
        builder.gemm("g1", 32, 32, 32)
        builder.gemm("g2", 32, 32, 32)
        assert builder.build().total_flops == pytest.approx(2 * 2 * 32**3)


class TestCollectivePolicy:
    def test_overlapping_collective_claims_only_link(self):
        builder = ProgramBuilder(TPUV4)
        builder.allgather("ag", 4, 1e6, LINK_H)
        act = builder.build().activities[0]
        assert act.exclusive == (LINK_H,)

    def test_no_overlap_collective_claims_core_too(self):
        builder = ProgramBuilder(TPUV4_CLOUD_4X4)
        builder.reducescatter("rds", 4, 1e6, LINK_V)
        act = builder.build().activities[0]
        assert set(act.exclusive) == {LINK_V, CORE}

    def test_unknown_link_rejected(self, hw):
        builder = ProgramBuilder(hw)
        with pytest.raises(ValueError, match="unknown link"):
            builder.allgather("ag", 4, 1e6, "link_z")

    def test_breakdown_metadata(self, hw):
        builder = ProgramBuilder(hw)
        builder.allgather("ag", 8, 1e6, LINK_H)
        meta = builder.build().activities[0].meta
        assert meta["launch"] == pytest.approx(hw.t_launch)
        assert meta["sync"] == pytest.approx(7 * hw.t_sync)
        assert meta["syncs"] == 7


class TestSendRecvPolicy:
    def test_fully_async_single_activity(self):
        builder = ProgramBuilder(TPUV4)
        builder.sendrecv("sr", 1e6, LINK_H)
        acts = builder.build().activities
        assert len(acts) == 1
        assert acts[0].exclusive == (LINK_H,)

    def test_partial_overlap_splits_activity(self):
        hw = TPUV4.with_overrides(sendrecv_overlap_fraction=0.25)
        builder = ProgramBuilder(hw)
        builder.sendrecv("sr", 1e6, LINK_H)
        acts = builder.build().activities
        assert len(acts) == 2
        async_part, blocking_part = acts
        assert async_part.exclusive == (LINK_H,)
        assert set(blocking_part.exclusive) == {LINK_H, CORE}
        assert blocking_part.deps == (async_part.aid,)
        # Durations split 25/75.
        assert async_part.duration == pytest.approx(
            (async_part.duration + blocking_part.duration) * 0.25
        )

    def test_no_overlap_claims_core(self):
        hw = TPUV4.with_overrides(overlap_sendrecv=False)
        builder = ProgramBuilder(hw)
        builder.sendrecv("sr", 1e6, LINK_H)
        acts = builder.build().activities
        assert len(acts) == 1
        assert set(acts[0].exclusive) == {LINK_H, CORE}


class TestProgramExecution:
    def test_program_runs(self, hw):
        builder = ProgramBuilder(hw)
        ag = builder.allgather("ag", 4, 1e6, LINK_H)
        builder.gemm("g", 256, 256, 256, deps=[ag])
        spans = builder.build().run()
        assert len(spans) == 2
        assert spans[0].label == "ag"
        assert spans[1].start >= spans[0].end

    def test_barrier_orders_without_time(self, hw):
        builder = ProgramBuilder(hw)
        a = builder.gemm("a", 64, 64, 64)
        b = builder.barrier("b", deps=[a])
        builder.gemm("c", 64, 64, 64, deps=[b])
        spans = builder.build().run()
        barrier = next(s for s in spans if s.kind == "barrier")
        assert barrier.duration == pytest.approx(0.0)

    def test_meta_passthrough(self, hw):
        builder = ProgramBuilder(hw)
        program = builder.build(algorithm="test", anything=123)
        assert program.meta["algorithm"] == "test"
        assert program.meta["anything"] == 123
