"""Tests for hardware parameter descriptions and presets."""

import dataclasses

import pytest

from repro.hw import (
    TPUV4,
    TPUV4_CLOUD_4X4,
    TPUV4_CLOUD_4X4_OVERLAP,
    HardwareParams,
    get_preset,
    preset_names,
)


class TestHardwareParams:
    def test_defaults_are_valid(self):
        hw = HardwareParams()
        assert hw.peak_flops > 0
        assert hw.ring_bandwidth == hw.link_bandwidth * hw.links_per_direction

    def test_effective_flops_below_peak(self):
        hw = HardwareParams(peak_flops=100.0, compute_efficiency=0.5)
        assert hw.effective_flops == pytest.approx(50.0)

    def test_with_overrides_returns_new_object(self):
        hw = HardwareParams()
        modified = hw.with_overrides(link_bandwidth=1.0)
        assert modified.link_bandwidth == 1.0
        assert hw.link_bandwidth != 1.0
        assert modified is not hw

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            HardwareParams().peak_flops = 1.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("peak_flops", 0.0),
            ("peak_flops", -1.0),
            ("hbm_bandwidth", 0.0),
            ("link_bandwidth", -5.0),
            ("links_per_direction", 3),
            ("links_per_direction", 0),
            ("dtype_bytes", 0),
            ("memory_block", 0),
            ("compute_efficiency", 0.0),
            ("compute_efficiency", 1.5),
            ("sendrecv_overlap_fraction", -0.1),
            ("sendrecv_overlap_fraction", 1.1),
        ],
    )
    def test_validation_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            HardwareParams(**{field: value})


class TestPresets:
    def test_tpuv4_is_bidirectional_overlapping(self):
        assert TPUV4.links_per_direction == 2
        assert TPUV4.overlap_collectives

    def test_cloud_preset_restrictions(self):
        assert TPUV4_CLOUD_4X4.links_per_direction == 1
        assert not TPUV4_CLOUD_4X4.overlap_collectives
        assert TPUV4_CLOUD_4X4.sendrecv_overlap_fraction < 1.0

    def test_cloud_overlap_preset_enables_collective_overlap(self):
        assert TPUV4_CLOUD_4X4_OVERLAP.overlap_collectives
        assert TPUV4_CLOUD_4X4_OVERLAP.links_per_direction == 1

    def test_cloud_has_half_ring_bandwidth_of_sim(self):
        assert TPUV4_CLOUD_4X4.ring_bandwidth == TPUV4.ring_bandwidth / 2

    def test_get_preset_round_trips(self):
        for name in preset_names():
            assert get_preset(name).name == name

    def test_get_preset_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown hardware preset"):
            get_preset("does-not-exist")

    def test_paper_utilization_denominator(self):
        # The paper reports utilization against 272 TFLOPS per TPUv4.
        assert TPUV4.peak_flops == pytest.approx(272e12)
