"""Tests for the LLM model zoo and workload enumeration."""

import pytest

from repro.hw import TPUV4
from repro.models import (
    GPT3_175B,
    MEGATRON_NLG_530B,
    LLMConfig,
    block_fc_flops,
    distinct_gemm_shapes,
    fc_layers,
    get_model,
    model_names,
    nonfc_block_seconds,
    nonfc_model_seconds,
)


class TestLLMConfig:
    def test_gpt3_architecture(self):
        assert GPT3_175B.num_layers == 96
        assert GPT3_175B.hidden == 12288
        assert GPT3_175B.ffn_dim == 4 * 12288
        assert GPT3_175B.seq_len == 2048

    def test_megatron_architecture(self):
        assert MEGATRON_NLG_530B.num_layers == 105
        assert MEGATRON_NLG_530B.hidden == 20480

    def test_param_counts_in_right_ballpark(self):
        # FC layers hold the bulk of the parameters.
        assert GPT3_175B.approx_params == pytest.approx(175e9, rel=0.25)
        assert MEGATRON_NLG_530B.approx_params == pytest.approx(530e9, rel=0.25)

    def test_megatron_is_larger(self):
        assert MEGATRON_NLG_530B.approx_params > GPT3_175B.approx_params

    def test_tokens(self):
        assert GPT3_175B.tokens(128) == 128 * 2048

    def test_tokens_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            GPT3_175B.tokens(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LLMConfig("bad", 0, 128, 8, 16)
        with pytest.raises(ValueError):
            LLMConfig("bad", 2, 128, 8, 16, ffn_mult=0)

    def test_registry(self):
        assert "gpt3-175b" in model_names()
        assert get_model("gpt3-175b") is GPT3_175B
        with pytest.raises(KeyError):
            get_model("gpt5")


class TestFCLayers:
    def test_four_layers_per_block(self):
        layers = fc_layers(GPT3_175B)
        assert [l.name for l in layers] == ["qkv", "attn_out", "ffn_in", "ffn_out"]

    def test_dimensions(self):
        layers = {l.name: l for l in fc_layers(GPT3_175B)}
        h = GPT3_175B.hidden
        assert (layers["qkv"].in_dim, layers["qkv"].out_dim) == (h, 3 * h)
        assert (layers["attn_out"].in_dim, layers["attn_out"].out_dim) == (h, h)
        assert (layers["ffn_in"].in_dim, layers["ffn_in"].out_dim) == (h, 4 * h)
        assert (layers["ffn_out"].in_dim, layers["ffn_out"].out_dim) == (4 * h, h)

    def test_forward_shape(self):
        layer = fc_layers(GPT3_175B)[0]
        shape = layer.forward_shape(1024)
        assert shape.as_tuple() == (1024, 3 * 12288, 12288)

    def test_weight_bytes(self):
        layer = fc_layers(GPT3_175B)[1]
        assert layer.weight_bytes() == 12288 * 12288 * 2


class TestDistinctShapes:
    @pytest.mark.parametrize("model", [GPT3_175B, MEGATRON_NLG_530B], ids=str)
    def test_eight_distinct_shapes(self, model):
        """The paper's Figure 11 evaluates 8 GeMM variants per model."""
        shapes = distinct_gemm_shapes(model, tokens=262144)
        assert len(shapes) == 8

    def test_flops_per_block(self):
        tokens = 2048
        total = block_fc_flops(GPT3_175B, tokens)
        expected = 3 * sum(
            2.0 * tokens * l.in_dim * l.out_dim for l in fc_layers(GPT3_175B)
        )
        assert total == pytest.approx(expected)


class TestNonFC:
    def test_positive_and_scales_down_with_chips(self):
        t16 = nonfc_block_seconds(GPT3_175B, 262144, 16, TPUV4)
        t256 = nonfc_block_seconds(GPT3_175B, 262144, 256, TPUV4)
        assert t16 > t256 > 0
        assert t16 == pytest.approx(16 * t256, rel=1e-6)

    def test_model_total_scales_with_layers(self):
        block = nonfc_block_seconds(GPT3_175B, 2048, 16, TPUV4)
        assert nonfc_model_seconds(GPT3_175B, 2048, 16, TPUV4) == pytest.approx(
            96 * block
        )

    def test_nonfc_smaller_than_fc_compute(self):
        """Non-FC work is a minority of block time (LLM folklore and
        the premise of the paper's end-to-end combination)."""
        tokens = 262144
        chips = 256
        fc_seconds = block_fc_flops(GPT3_175B, tokens) / chips / TPUV4.effective_flops
        assert nonfc_block_seconds(GPT3_175B, tokens, chips, TPUV4) < fc_seconds

    def test_rejects_bad_chips(self):
        with pytest.raises(ValueError):
            nonfc_block_seconds(GPT3_175B, 2048, 0, TPUV4)
