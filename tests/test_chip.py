"""Tests for the TPU core compute model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import HardwareParams, TPUV4
from repro.sim import effective_gemm_seconds, gemm_cost, slice_cost
from repro.sim.chip import gemm_hbm_bytes


class TestGemmCost:
    def test_large_gemm_near_peak(self, hw):
        """A big square GeMM should run near the effective throughput."""
        cost = gemm_cost(8192, 8192, 8192, hw)
        ideal = cost.flops / hw.effective_flops
        assert cost.seconds == pytest.approx(ideal, rel=0.05)

    def test_flop_count(self, hw):
        cost = gemm_cost(100, 200, 300, hw)
        assert cost.flops == pytest.approx(2.0 * 100 * 200 * 300)

    def test_kernel_overhead_floor(self, hw):
        cost = gemm_cost(1, 1, 1, hw)
        assert cost.seconds >= hw.t_kernel

    def test_degenerate_dims(self, hw):
        cost = gemm_cost(0, 10, 10, hw)
        assert cost.flops == 0.0
        assert cost.seconds == pytest.approx(hw.t_kernel)

    def test_padding_penalizes_thin_gemms(self, hw):
        """A GeMM with m far below the MXU width wastes throughput."""
        thin = gemm_cost(8, 8192, 8192, hw)
        ideal = thin.flops / hw.effective_flops
        assert thin.seconds > 4 * ideal

    def test_memory_bound_gemm(self):
        """With tiny HBM bandwidth, the roofline flips to memory."""
        slow_hbm = TPUV4.with_overrides(hbm_bandwidth=1e9)
        cost = gemm_cost(1024, 1024, 1024, slow_hbm)
        assert cost.seconds >= cost.hbm_bytes / 1e9

    def test_monotonic_in_k(self, hw):
        assert (
            gemm_cost(512, 512, 2048, hw).seconds
            > gemm_cost(512, 512, 1024, hw).seconds
        )

    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(1, 4096),
        n=st.integers(1, 4096),
        k=st.integers(1, 4096),
    )
    def test_time_at_least_ideal(self, m, n, k):
        cost = gemm_cost(m, n, k, TPUV4)
        assert cost.seconds >= cost.flops / TPUV4.effective_flops

    def test_effective_wrapper(self, hw):
        assert effective_gemm_seconds(64, 64, 64, hw) == pytest.approx(
            gemm_cost(64, 64, 64, hw).seconds
        )


class TestHbmTraffic:
    def test_at_least_compulsory(self, hw):
        m, n, k = 1024, 1024, 1024
        compulsory = (m * k + k * n + 2 * m * n) * hw.dtype_bytes
        assert gemm_hbm_bytes(m, n, k, hw) >= compulsory

    def test_large_k_forces_re_reads(self):
        """When panels exceed the scratchpad, inputs are re-read."""
        small_spad = TPUV4.with_overrides(scratchpad_bytes=1e6)
        m = n = 4096
        k = 16384
        traffic = gemm_hbm_bytes(m, n, k, small_spad)
        compulsory = (m * k + k * n + 2 * m * n) * small_spad.dtype_bytes
        assert traffic > 1.5 * compulsory

    def test_zero_for_degenerate(self, hw):
        assert gemm_hbm_bytes(0, 8, 8, hw) == 0.0


class TestSliceCost:
    def test_copy_time_tracks_bytes(self, hw):
        small = slice_cost(1e6, hw)
        large = slice_cost(1e8, hw)
        assert large.seconds > small.seconds
        assert large.hbm_bytes == pytest.approx(100 * small.hbm_bytes)

    def test_includes_read_and_write(self, hw):
        cost = slice_cost(1e6, hw)
        assert cost.hbm_bytes >= 2e6

    def test_no_flops(self, hw):
        assert slice_cost(1e6, hw).flops == 0.0

    def test_rejects_negative(self, hw):
        with pytest.raises(ValueError):
            slice_cost(-1.0, hw)

    def test_overhead_factor_applied(self):
        base = HardwareParams(slicing_overhead=0.0)
        padded = HardwareParams(slicing_overhead=0.5)
        assert slice_cost(1e8, padded).hbm_bytes == pytest.approx(
            1.5 * slice_cost(1e8, base).hbm_bytes
        )


class TestComputeCostDataclass:
    def test_hbm_rate(self, hw):
        cost = gemm_cost(256, 256, 256, hw)
        assert cost.hbm_rate == pytest.approx(cost.hbm_bytes / cost.seconds)
