"""Property tests for the space-filling-curve rank layouts.

The SFC GeMM's correctness rests on three layout properties, each
pinned here over arbitrary mesh shapes: every layout is a bijection
onto the grid, the curves beat (or tie) row-major's locality, and the
layouts stay well-formed through ``without_row``/``without_col``
degraded meshes. Shapes are bounded at 32 per axis — the range the
curve generators have been exhaustively verified over.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.topology import (
    LAYOUTS,
    Mesh2D,
    curve_length,
    hilbert_order,
    layout_names,
    morton_order,
)

dims = st.integers(1, 32)


def _row_major_length(rows: int, cols: int) -> int:
    """Total Manhattan distance of the row-major walk (full-width seams)."""
    return rows * (cols - 1) + (rows - 1) * cols


class TestBijectivity:
    @given(rows=dims, cols=dims, name=st.sampled_from(LAYOUTS))
    @settings(max_examples=60, deadline=None)
    def test_layout_is_a_bijection(self, rows, cols, name):
        mesh = Mesh2D(rows, cols)
        order = mesh.layout(name)
        assert len(order) == mesh.size
        assert set(order) == set(mesh.coords())

    @given(rows=dims, cols=dims, name=st.sampled_from(LAYOUTS))
    @settings(max_examples=30, deadline=None)
    def test_rank_of_inverts_layout(self, rows, cols, name):
        mesh = Mesh2D(rows, cols)
        order = mesh.layout(name)
        for rank in range(0, mesh.size, max(1, mesh.size // 7)):
            assert mesh.rank_of(order[rank], name) == rank

    def test_row_major_matches_coords(self):
        mesh = Mesh2D(3, 5)
        assert mesh.layout("row-major") == tuple(mesh.coords())
        assert mesh.rank_of((2, 4)) == 2 * 5 + 4

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError, match="unknown layout"):
            Mesh2D(2, 2).layout("diagonal")

    def test_layout_names(self):
        assert layout_names() == ("row-major", "hilbert", "morton")


class TestLocality:
    @given(rows=dims, cols=dims)
    @settings(max_examples=60, deadline=None)
    def test_hilbert_steps_are_near_unit(self, rows, cols):
        """Unit steps, except at most one distance-2 seam on ragged grids."""
        order = hilbert_order(rows, cols)
        steps = [
            abs(a[0] - b[0]) + abs(a[1] - b[1])
            for a, b in zip(order, order[1:])
        ]
        assert all(step <= 2 for step in steps)
        assert sum(1 for step in steps if step > 1) <= 1

    @given(rows=dims, cols=dims)
    @settings(max_examples=60, deadline=None)
    def test_curves_beat_row_major(self, rows, cols):
        bound = _row_major_length(rows, cols)
        assert curve_length(hilbert_order(rows, cols)) <= bound
        assert curve_length(morton_order(rows, cols)) <= bound

    def test_hilbert_is_strictly_better_on_squares(self):
        # On a power-of-two square the Hilbert walk is all unit steps.
        assert curve_length(hilbert_order(8, 8)) == 63
        assert curve_length(hilbert_order(8, 8)) < _row_major_length(8, 8)

    @given(rows=dims, cols=dims)
    @settings(max_examples=30, deadline=None)
    def test_torus_distance_bounds_curve_steps(self, rows, cols):
        """Physical routing never exceeds the grid walk distance."""
        mesh = Mesh2D(rows, cols)
        order = mesh.layout("hilbert")
        for a, b in zip(order, order[1:]):
            walked = abs(a[0] - b[0]) + abs(a[1] - b[1])
            assert mesh.torus_distance(a, b) <= walked


class TestDegradedMeshes:
    @given(
        rows=st.integers(2, 16),
        cols=st.integers(2, 16),
        name=st.sampled_from(LAYOUTS),
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_through_without_row(self, rows, cols, name):
        """A degraded mesh's layout is a fresh bijection on its grid."""
        degraded = Mesh2D(rows, cols).without_row(0)
        order = degraded.layout(name)
        assert set(order) == set(degraded.coords())
        for rank, coord in enumerate(order):
            assert degraded.rank_of(coord, name) == rank

    @given(
        rows=st.integers(2, 16),
        cols=st.integers(2, 16),
        name=st.sampled_from(LAYOUTS),
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_through_without_col(self, rows, cols, name):
        degraded = Mesh2D(rows, cols).without_col(cols - 1)
        order = degraded.layout(name)
        assert set(order) == set(degraded.coords())
        assert curve_length(order) <= _row_major_length(
            degraded.rows, degraded.cols
        )


class TestTorusDistance:
    @given(rows=dims, cols=dims, data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_metric_properties(self, rows, cols, data):
        mesh = Mesh2D(rows, cols)
        coord = st.tuples(
            st.integers(0, rows - 1), st.integers(0, cols - 1)
        )
        a, b = data.draw(coord), data.draw(coord)
        d = mesh.torus_distance(a, b)
        assert d == mesh.torus_distance(b, a)
        assert (d == 0) == (a == b)
        assert d <= rows // 2 + cols // 2

    def test_wraparound(self):
        mesh = Mesh2D(4, 8)
        assert mesh.torus_distance((0, 0), (3, 7)) == 2  # 1 up + 1 left
        assert mesh.torus_distance((0, 0), (2, 4)) == 6  # no shortcut
