"""Tests for the functional ring collectives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import (
    ag_col,
    ag_row,
    bcast_col,
    bcast_row,
    rds_col,
    rds_row,
    reduce_col,
    reduce_row,
    ring_allgather,
    ring_reducescatter,
    shift_col,
    shift_row,
)
from repro.mesh import Mesh2D


def _shards(rng, mesh, shape=(4, 4)):
    return {coord: rng.standard_normal(shape) for coord in mesh.coords()}


class TestRingPrimitives:
    @settings(max_examples=30, deadline=None)
    @given(p=st.integers(1, 9), axis=st.integers(0, 1))
    def test_ring_allgather_matches_concat(self, p, axis):
        rng = np.random.default_rng(p)
        chunks = [rng.standard_normal((3, 3)) for _ in range(p)]
        expected = np.concatenate(chunks, axis=axis)
        for gathered in ring_allgather(chunks, axis):
            assert np.array_equal(gathered, expected)

    @settings(max_examples=30, deadline=None)
    @given(p=st.integers(1, 9), axis=st.integers(0, 1))
    def test_ring_reducescatter_matches_sum(self, p, axis):
        rng = np.random.default_rng(p + 100)
        size = [p * 2, p * 2]
        parts = [rng.standard_normal(size) for _ in range(p)]
        total = np.sum(parts, axis=0)
        expected_chunks = np.array_split(total, p, axis=axis)
        scattered = ring_reducescatter(parts, axis)
        for rank in range(p):
            assert np.allclose(scattered[rank], expected_chunks[rank])

    def test_ring_reducescatter_rejects_uneven(self):
        parts = [np.zeros((3, 2)), np.zeros((3, 2))]
        with pytest.raises(ValueError, match="does not divide"):
            ring_reducescatter(parts, axis=0)


class TestMeshCollectives:
    def test_ag_col_gathers_row_ring(self, rng):
        mesh = Mesh2D(2, 3)
        shards = _shards(rng, mesh)
        out = ag_col(shards, mesh, axis=1)
        for i in range(mesh.rows):
            expected = np.concatenate(
                [shards[(i, j)] for j in range(mesh.cols)], axis=1
            )
            for j in range(mesh.cols):
                assert np.array_equal(out[(i, j)], expected)

    def test_ag_row_gathers_col_ring(self, rng):
        mesh = Mesh2D(3, 2)
        shards = _shards(rng, mesh)
        out = ag_row(shards, mesh, axis=0)
        for j in range(mesh.cols):
            expected = np.concatenate(
                [shards[(i, j)] for i in range(mesh.rows)], axis=0
            )
            for i in range(mesh.rows):
                assert np.array_equal(out[(i, j)], expected)

    def test_rds_col_sums_and_scatters(self, rng):
        mesh = Mesh2D(2, 4)
        partials = _shards(rng, mesh, shape=(2, 8))
        out = rds_col(partials, mesh, axis=1)
        for i in range(mesh.rows):
            total = sum(partials[(i, j)] for j in range(mesh.cols))
            for j in range(mesh.cols):
                assert np.allclose(out[(i, j)], total[:, j * 2:(j + 1) * 2])

    def test_rds_row_sums_and_scatters(self, rng):
        mesh = Mesh2D(4, 2)
        partials = _shards(rng, mesh, shape=(8, 2))
        out = rds_row(partials, mesh, axis=0)
        for j in range(mesh.cols):
            total = sum(partials[(i, j)] for i in range(mesh.rows))
            for i in range(mesh.rows):
                assert np.allclose(out[(i, j)], total[i * 2:(i + 1) * 2, :])

    def test_ag_then_rds_identity(self, rng):
        """ReduceScatter of an AllGather returns P times the input."""
        mesh = Mesh2D(1, 4)
        shards = {c: rng.standard_normal((2, 2)) for c in mesh.coords()}
        gathered = ag_col(shards, mesh, axis=1)
        scattered = rds_col(gathered, mesh, axis=1)
        for coord in mesh.coords():
            assert np.allclose(scattered[coord], mesh.cols * shards[coord])

    def test_missing_shard_rejected(self, rng):
        mesh = Mesh2D(2, 2)
        shards = _shards(rng, mesh)
        del shards[(1, 1)]
        with pytest.raises(ValueError, match="missing"):
            ag_col(shards, mesh)


class TestBroadcastReduce:
    def test_bcast_col(self, rng):
        mesh = Mesh2D(2, 3)
        shards = _shards(rng, mesh)
        out = bcast_col(shards, mesh, root_col=1)
        for i, j in mesh.coords():
            assert np.array_equal(out[(i, j)], shards[(i, 1)])

    def test_bcast_row(self, rng):
        mesh = Mesh2D(3, 2)
        shards = _shards(rng, mesh)
        out = bcast_row(shards, mesh, root_row=2)
        for i, j in mesh.coords():
            assert np.array_equal(out[(i, j)], shards[(2, j)])

    def test_bcast_only_needs_root_entries(self, rng):
        mesh = Mesh2D(2, 3)
        roots = {(i, 0): rng.standard_normal((2, 2)) for i in range(2)}
        out = bcast_col(roots, mesh, root_col=0)
        assert len(out) == mesh.size

    def test_reduce_col_lands_at_root(self, rng):
        mesh = Mesh2D(2, 3)
        partials = _shards(rng, mesh)
        out = reduce_col(partials, mesh, root_col=2)
        for i in range(mesh.rows):
            total = sum(partials[(i, j)] for j in range(mesh.cols))
            assert np.allclose(out[(i, 2)], total)
            assert (i, 0) not in out

    def test_reduce_row_lands_at_root(self, rng):
        mesh = Mesh2D(3, 2)
        partials = _shards(rng, mesh)
        out = reduce_row(partials, mesh, root_row=0)
        for j in range(mesh.cols):
            total = sum(partials[(i, j)] for i in range(mesh.rows))
            assert np.allclose(out[(0, j)], total)

    def test_root_bounds_checked(self, rng):
        mesh = Mesh2D(2, 2)
        with pytest.raises(IndexError):
            bcast_col(_shards(rng, mesh), mesh, root_col=2)


class TestShifts:
    def test_shift_col_moves_left(self, rng):
        mesh = Mesh2D(1, 4)
        shards = {c: rng.standard_normal((2, 2)) for c in mesh.coords()}
        out = shift_col(shards, mesh, hops=1)
        for j in range(4):
            assert np.array_equal(out[(0, j)], shards[(0, (j + 1) % 4)])

    def test_shift_row_moves_up(self, rng):
        mesh = Mesh2D(4, 1)
        shards = {c: rng.standard_normal((2, 2)) for c in mesh.coords()}
        out = shift_row(shards, mesh, hops=2)
        for i in range(4):
            assert np.array_equal(out[(i, 0)], shards[((i + 2) % 4, 0)])

    def test_full_rotation_is_identity(self, rng):
        mesh = Mesh2D(2, 3)
        shards = _shards(rng, mesh)
        out = shift_col(shards, mesh, hops=mesh.cols)
        for coord in mesh.coords():
            assert np.array_equal(out[coord], shards[coord])


class TestShardValidation:
    """Mismatched ring participants fail loudly, naming the rank."""

    def test_allgather_shape_mismatch_names_rank(self):
        chunks = [np.zeros((3, 3)), np.zeros((3, 3)), np.zeros((3, 4))]
        with pytest.raises(ValueError, match=r"ring_allgather: rank 2 shard"):
            ring_allgather(chunks, axis=1)

    def test_allgather_dtype_mismatch_names_rank(self):
        chunks = [np.zeros((3, 3)), np.zeros((3, 3), dtype=np.float32)]
        with pytest.raises(ValueError, match=r"ring_allgather: rank 1 shard"):
            ring_allgather(chunks, axis=0)

    def test_reducescatter_shape_mismatch_names_rank(self):
        parts = [np.zeros((4, 4)), np.zeros((4, 2)), np.zeros((4, 4))]
        with pytest.raises(
            ValueError, match=r"ring_reducescatter: rank 1 shard"
        ):
            ring_reducescatter(parts, axis=1)

    def test_reducescatter_dtype_mismatch_names_rank(self):
        parts = [np.zeros((4, 4)), np.zeros((4, 4)), np.ones((4, 4), dtype=np.int64)]
        with pytest.raises(
            ValueError, match=r"ring_reducescatter: rank 2 shard"
        ):
            ring_reducescatter(parts, axis=0)

    def test_message_reports_both_sides(self):
        chunks = [np.zeros((2, 2)), np.zeros((2, 5))]
        with pytest.raises(ValueError) as excinfo:
            ring_allgather(chunks, axis=1)
        message = str(excinfo.value)
        assert "(2, 5)" in message and "(2, 2)" in message
        assert "disagrees with rank 0" in message

    def test_uniform_shards_pass(self, rng):
        chunks = [rng.standard_normal((6, 6)) for _ in range(3)]
        ring_allgather(chunks, axis=0)
        ring_reducescatter(chunks, axis=0)
