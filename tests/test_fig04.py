"""Tests for the Figure 4 timeline experiment."""

from repro.experiments import fig04_timelines
from repro.sim.trace import Trace
from repro.sim.engine import CORE, LINK_H, LINK_V


class TestFig4:
    def test_meshslice_fastest(self):
        rows = fig04_timelines.run()
        order = fig04_timelines.ordering(rows)
        assert order[0] == "meshslice"
        assert set(order) == {
            "cannon", "summa", "collective", "wang", "meshslice",
        }

    def test_meshslice_uses_both_links_while_computing(self):
        """The Figure 4 signature: MeshSlice keeps compute and both
        torus directions busy simultaneously."""
        rows = {r.algorithm: r for r in fig04_timelines.run()}
        trace = rows["meshslice"].result.trace
        total = rows["meshslice"].result.makespan
        assert trace.busy_time(CORE) > 0.7 * total
        assert trace.busy_time(LINK_H) > 0.3 * total
        assert trace.busy_time(LINK_V) > 0.1 * total

    def test_collective_never_overlaps(self):
        """Collective's core and link busy times sum to the makespan
        (no concurrency between compute and communication)."""
        rows = {r.algorithm: r for r in fig04_timelines.run()}
        result = rows["collective"].result
        trace = Trace.from_spans(result.spans)
        core = trace.busy_time(CORE)
        links = max(trace.busy_time(LINK_H), trace.busy_time(LINK_V))
        assert core + links >= 0.99 * result.makespan

    def test_main_renders_all_timelines(self):
        report = fig04_timelines.main()
        for name in ("cannon", "summa", "collective", "wang", "meshslice"):
            assert name in report
        assert "fastest to slowest" in report
