"""Tests for the memoization layer: counters, kill switch, registry."""

import pytest

from repro.algorithms import GeMMConfig
from repro.core.gemm import GeMMShape
from repro.mesh import Mesh2D
from repro.perf import (
    KILL_SWITCH_ENV,
    cache_stats,
    caching_enabled,
    clear_caches,
    memoize,
    registered_caches,
    simulated_pass,
)


@pytest.fixture
def cfg():
    return GeMMConfig(
        shape=GeMMShape(m=512, n=512, k=512),
        mesh=Mesh2D(2, 2),
        slices=2,
    )


@pytest.fixture(autouse=True)
def _fresh_caches(monkeypatch):
    # Start from caching-on even when the suite itself runs under
    # REPRO_NO_CACHE (the CI no-cache lane); each test opts back out.
    monkeypatch.delenv(KILL_SWITCH_ENV, raising=False)
    clear_caches()
    yield
    clear_caches()


def test_hit_and_miss_counters(cfg, hw):
    first = simulated_pass("meshslice", cfg, hw)
    stats = cache_stats("simulated_pass")["simulated_pass"]
    assert stats.misses == 1
    assert stats.hits == 0
    assert stats.entries == 1

    second = simulated_pass("meshslice", cfg, hw)
    stats = cache_stats("simulated_pass")["simulated_pass"]
    assert stats.misses == 1
    assert stats.hits == 1
    assert stats.entries == 1
    assert second is first  # cached object, not a re-simulation
    assert stats.calls == 2
    assert stats.hit_rate == 0.5


def test_kill_switch_disables_caching(cfg, hw, monkeypatch):
    monkeypatch.setenv(KILL_SWITCH_ENV, "1")
    assert not caching_enabled()

    first = simulated_pass("meshslice", cfg, hw)
    second = simulated_pass("meshslice", cfg, hw)
    stats = cache_stats("simulated_pass")["simulated_pass"]
    assert stats.hits == 0
    assert stats.misses == 0
    assert stats.entries == 0
    # Two independent simulations of the same configuration agree.
    assert second is not first
    assert second.makespan == first.makespan
    assert second.spans == first.spans


def test_kill_switch_is_per_call(cfg, hw, monkeypatch):
    cached = simulated_pass("meshslice", cfg, hw)
    monkeypatch.setenv(KILL_SWITCH_ENV, "true")
    assert not caching_enabled()
    bypassed = simulated_pass("meshslice", cfg, hw)
    stats = cache_stats("simulated_pass")["simulated_pass"]
    assert (stats.hits, stats.misses, stats.entries) == (0, 1, 1)
    assert bypassed is not cached

    monkeypatch.delenv(KILL_SWITCH_ENV)
    assert caching_enabled()
    again = simulated_pass("meshslice", cfg, hw)
    assert again is cached
    stats = cache_stats("simulated_pass")["simulated_pass"]
    assert (stats.hits, stats.misses) == (1, 1)


def test_kill_switch_falsy_values_keep_caching(cfg, hw, monkeypatch):
    for value in ("", "0", "no", "off", "false"):
        monkeypatch.setenv(KILL_SWITCH_ENV, value)
        assert caching_enabled(), value


def test_clear_caches_resets_counters(cfg, hw):
    simulated_pass("meshslice", cfg, hw)
    simulated_pass("meshslice", cfg, hw)
    clear_caches(("simulated_pass",))
    stats = cache_stats("simulated_pass")["simulated_pass"]
    assert (stats.hits, stats.misses, stats.entries) == (0, 0, 0)


def test_pipeline_caches_are_registered():
    # Caches register at module import; pull in every layer first.
    import repro.autotuner.costmodel  # noqa: F401
    import repro.autotuner.dataflow  # noqa: F401
    import repro.perf.pipeline  # noqa: F401
    import repro.sim.chip  # noqa: F401

    names = registered_caches()
    for expected in (
        "gemm_cost",
        "meshslice_estimate",
        "best_slice_count",
        "plan_model",
        "built_program",
        "simulated_pass",
        "pass_lower_bound",
    ):
        assert expected in names


def test_memoize_rejects_duplicate_names():
    with pytest.raises(ValueError, match="already registered"):
        memoize("simulated_pass")


def test_memoize_unhashable_arguments_fall_through():
    calls = []

    @memoize("test_unhashable_fallback")
    def fn(x):
        calls.append(x)
        return len(calls)

    try:
        assert fn([1, 2]) == 1
        assert fn([1, 2]) == 2  # lists are unhashable: never cached
        stats = cache_stats("test_unhashable_fallback")[
            "test_unhashable_fallback"
        ]
        assert (stats.hits, stats.misses, stats.entries) == (0, 0, 0)
        assert fn(7) == 3
        assert fn(7) == 3
        stats = cache_stats("test_unhashable_fallback")[
            "test_unhashable_fallback"
        ]
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
    finally:
        from repro.perf.cache import _REGISTRY

        _REGISTRY.pop("test_unhashable_fallback", None)
