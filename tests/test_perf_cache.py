"""Tests for the memoization layer: counters, kill switch, registry."""

import pytest

from repro.algorithms import GeMMConfig
from repro.core.gemm import GeMMShape
from repro.mesh import Mesh2D
from repro.perf import (
    KILL_SWITCH_ENV,
    cache_stats,
    caching_enabled,
    clear_caches,
    memoize,
    registered_caches,
    simulated_pass,
)


@pytest.fixture
def cfg():
    return GeMMConfig(
        shape=GeMMShape(m=512, n=512, k=512),
        mesh=Mesh2D(2, 2),
        slices=2,
    )


@pytest.fixture(autouse=True)
def _fresh_caches(monkeypatch):
    # Start from caching-on even when the suite itself runs under
    # REPRO_NO_CACHE (the CI no-cache lane); each test opts back out.
    monkeypatch.delenv(KILL_SWITCH_ENV, raising=False)
    clear_caches()
    yield
    clear_caches()


def test_hit_and_miss_counters(cfg, hw):
    first = simulated_pass("meshslice", cfg, hw)
    stats = cache_stats("simulated_pass")["simulated_pass"]
    assert stats.misses == 1
    assert stats.hits == 0
    assert stats.entries == 1

    second = simulated_pass("meshslice", cfg, hw)
    stats = cache_stats("simulated_pass")["simulated_pass"]
    assert stats.misses == 1
    assert stats.hits == 1
    assert stats.entries == 1
    assert second is first  # cached object, not a re-simulation
    assert stats.calls == 2
    assert stats.hit_rate == 0.5


def test_kill_switch_disables_caching(cfg, hw, monkeypatch):
    monkeypatch.setenv(KILL_SWITCH_ENV, "1")
    assert not caching_enabled()

    first = simulated_pass("meshslice", cfg, hw)
    second = simulated_pass("meshslice", cfg, hw)
    stats = cache_stats("simulated_pass")["simulated_pass"]
    assert stats.hits == 0
    assert stats.misses == 0
    assert stats.entries == 0
    # Two independent simulations of the same configuration agree.
    assert second is not first
    assert second.makespan == first.makespan
    assert second.spans == first.spans


def test_kill_switch_is_per_call(cfg, hw, monkeypatch):
    cached = simulated_pass("meshslice", cfg, hw)
    monkeypatch.setenv(KILL_SWITCH_ENV, "true")
    assert not caching_enabled()
    bypassed = simulated_pass("meshslice", cfg, hw)
    stats = cache_stats("simulated_pass")["simulated_pass"]
    assert (stats.hits, stats.misses, stats.entries) == (0, 1, 1)
    assert bypassed is not cached

    monkeypatch.delenv(KILL_SWITCH_ENV)
    assert caching_enabled()
    again = simulated_pass("meshslice", cfg, hw)
    assert again is cached
    stats = cache_stats("simulated_pass")["simulated_pass"]
    assert (stats.hits, stats.misses) == (1, 1)


def test_kill_switch_falsy_values_keep_caching(cfg, hw, monkeypatch):
    for value in ("", "0", "no", "off", "false"):
        monkeypatch.setenv(KILL_SWITCH_ENV, value)
        assert caching_enabled(), value


def test_clear_caches_resets_counters(cfg, hw):
    simulated_pass("meshslice", cfg, hw)
    simulated_pass("meshslice", cfg, hw)
    clear_caches(("simulated_pass",))
    stats = cache_stats("simulated_pass")["simulated_pass"]
    assert (stats.hits, stats.misses, stats.entries) == (0, 0, 0)


def test_pipeline_caches_are_registered():
    # Caches register at module import; pull in every layer first.
    import repro.autotuner.costmodel  # noqa: F401
    import repro.autotuner.dataflow  # noqa: F401
    import repro.perf.pipeline  # noqa: F401
    import repro.sim.chip  # noqa: F401

    names = registered_caches()
    for expected in (
        "gemm_cost",
        "meshslice_estimate",
        "best_slice_count",
        "plan_model",
        "built_program",
        "simulated_pass",
        "pass_lower_bound",
        "canonical_config",
        "simulated_program",
    ):
        assert expected in names


def test_memoize_rejects_duplicate_names():
    with pytest.raises(ValueError, match="already registered"):
        memoize("simulated_pass")


def _same_cached_result(algorithm, hw, *cfgs):
    """All configs must share one cached ``SimResult`` object."""
    results = [simulated_pass(algorithm, c, hw) for c in cfgs]
    first = results[0]
    for result in results[1:]:
        assert result is first
    stats = cache_stats("simulated_pass")["simulated_pass"]
    assert stats.entries == 1
    assert stats.misses == 1
    assert stats.hits == len(cfgs) - 1


def test_canonical_wang_slices_clamp_to_ring(hw):
    import dataclasses

    base = GeMMConfig(
        shape=GeMMShape(m=4096, n=4096, k=8192),
        mesh=Mesh2D(4, 4),
        slices=4,  # == the decomposed ring length
    )
    _same_cached_result(
        "wang", hw, base,
        dataclasses.replace(base, slices=64),
        dataclasses.replace(base, slices=128),
    )


def test_canonical_1d_knob_insensitivity(hw):
    """1D TP and FSDP ignore dataflow and transposition entirely."""
    import dataclasses

    from repro.core.dataflow import Dataflow

    for algorithm in ("1dtp", "fsdp"):
        clear_caches()
        base = GeMMConfig(
            shape=GeMMShape(m=4096, n=1024, k=8192),
            mesh=Mesh2D(1, 8),
            slices=4,
        )
        _same_cached_result(
            algorithm, hw, base,
            dataclasses.replace(base, dataflow=Dataflow.LS),
            dataclasses.replace(base, dataflow=Dataflow.RS, transposed=True),
            dataclasses.replace(base, transposed=True),
        )


def test_canonical_cannon_ignores_slices_and_transposition(hw):
    import dataclasses

    base = GeMMConfig(
        shape=GeMMShape(m=4096, n=4096, k=8192),
        mesh=Mesh2D(4, 4),
        slices=1,
    )
    _same_cached_result(
        "cannon", hw, base,
        dataclasses.replace(base, slices=16),
        dataclasses.replace(base, transposed=True),
        dataclasses.replace(base, slices=8, transposed=True),
    )


def test_canonical_configs_build_bit_identical_programs(hw):
    """The canonical_config contract, enforced by fingerprint equality."""
    import random

    from repro.algorithms import algorithm_names, get_algorithm
    from repro.core.dataflow import Dataflow
    from repro.perf.pipeline import _program_fingerprint

    rng = random.Random(7)
    collapsed = 0
    for name in algorithm_names():
        alg = get_algorithm(name)
        for _trial in range(12):
            cfg = GeMMConfig(
                shape=GeMMShape(
                    m=rng.choice([1024, 4096]),
                    n=rng.choice([1024, 4096]),
                    k=rng.choice([2048, 8192]),
                ),
                mesh=rng.choice(
                    [Mesh2D(1, 8), Mesh2D(2, 8), Mesh2D(4, 4), Mesh2D(2, 2)]
                ),
                dataflow=rng.choice(list(Dataflow)),
                slices=rng.choice([1, 2, 4, 16, 64]),
                transposed=rng.random() < 0.5,
            )
            if not alg.supports(cfg):
                continue
            canonical = alg.canonical_config(cfg)
            assert alg.supports(canonical), (name, cfg)
            assert _program_fingerprint(
                alg.build_program(cfg, hw), hw
            ) == _program_fingerprint(
                alg.build_program(canonical, hw), hw
            ), (name, cfg, canonical)
            if canonical != cfg:
                collapsed += 1
    # The sample must actually exercise non-identity collapses.
    assert collapsed >= 10


def test_content_store_shares_identical_programs(hw, cfg):
    """The content-addressed layer deduplicates below the config keys."""
    from repro.perf.pipeline import (
        _simulate_content_addressed,
        built_program,
    )

    first = simulated_pass("meshslice", cfg, hw)
    # An independently built (but bit-identical) program resolves to
    # the *same* cached SimResult through the content store.
    program = built_program("meshslice", cfg, hw)
    again = _simulate_content_addressed(program, hw)
    assert again is first
    stats = cache_stats("simulated_program")["simulated_program"]
    assert stats.hits == 1
    assert stats.entries == 1


def test_session_hit_rate_regression(hw):
    """A sweep + re-render session stays above 50% simulated_pass hits.

    The canonicalized cache keys are what make the evaluation loops
    cheap: fig. 9 + fig. 10 + fig. 12 followed by a fig. 9 re-render
    measured ~0.60 when this test was pinned (0.38 before
    canonicalization). A drop below 0.5 means a cache-key regression.
    """
    from repro.experiments import (
        fig09_weak_scaling,
        fig10_comm_breakdown,
        fig12_strong_scaling,
    )

    fig09_weak_scaling.run()
    fig10_comm_breakdown.run()
    fig12_strong_scaling.run()
    fig09_weak_scaling.run()
    stats = cache_stats("simulated_pass")["simulated_pass"]
    assert stats.calls >= 2000
    assert stats.hit_rate >= 0.5, stats


def test_memoize_unhashable_arguments_fall_through():
    calls = []

    @memoize("test_unhashable_fallback")
    def fn(x):
        calls.append(x)
        return len(calls)

    try:
        assert fn([1, 2]) == 1
        assert fn([1, 2]) == 2  # lists are unhashable: never cached
        stats = cache_stats("test_unhashable_fallback")[
            "test_unhashable_fallback"
        ]
        assert (stats.hits, stats.misses, stats.entries) == (0, 0, 0)
        assert fn(7) == 3
        assert fn(7) == 3
        stats = cache_stats("test_unhashable_fallback")[
            "test_unhashable_fallback"
        ]
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
    finally:
        from repro.perf.cache import _REGISTRY

        _REGISTRY.pop("test_unhashable_fallback", None)
