"""Cross-zoo end-to-end smoke tests: every model runs the full stack.

The autotuner, the algorithms, the simulator, and the memory model must
work for every architecture in the zoo — including LLaMA-2's non-4x
SwiGLU FFN and PaLM's unusual head geometry — not just the paper's two
targets.
"""

import pytest

from repro.autotuner import plan_model, tune
from repro.experiments import best_block_run, weak_scaling_batch
from repro.experiments.common import pass_config, utilization_map
from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.models import (
    GPT3_175B,
    LLAMA2_70B,
    MEGATRON_NLG_530B,
    PALM_540B,
    get_model,
    model_names,
)

ZOO = (GPT3_175B, LLAMA2_70B, MEGATRON_NLG_530B, PALM_540B)


class TestZoo:
    def test_four_models_registered(self):
        assert len(model_names()) == 4

    @pytest.mark.parametrize("model", ZOO, ids=lambda m: m.name)
    def test_param_count_sane(self, model):
        nominal = float(model.name.split("-")[-1].rstrip("b").rstrip("B")) * 1e9
        # FC layers hold most (not all) of the parameters.
        assert 0.6 * nominal < model.approx_params <= 1.1 * nominal

    def test_llama_ffn_override(self):
        assert LLAMA2_70B.ffn_dim == 28672
        assert LLAMA2_70B.ffn_dim != LLAMA2_70B.ffn_mult * LLAMA2_70B.hidden


class TestZooEndToEnd:
    @pytest.mark.parametrize("model", ZOO, ids=lambda m: m.name)
    def test_autotuner_runs(self, model):
        result = tune(model, batch_size=8, chips=16, hw=TPUV4)
        assert result.mesh.size == 16
        assert result.block_seconds > 0
        assert len(result.passes) == 12

    @pytest.mark.parametrize("model", ZOO, ids=lambda m: m.name)
    def test_meshslice_beats_collective(self, model):
        chips = 16
        batch = weak_scaling_batch(chips)
        ms = best_block_run("meshslice", model, batch, chips, TPUV4)
        coll = best_block_run("collective", model, batch, chips, TPUV4)
        assert ms.seconds < coll.seconds

    def test_get_model_round_trip(self):
        for name in model_names():
            assert get_model(name).name == name


class TestCommonHelpers:
    def test_pass_config(self):
        plans = plan_model(GPT3_175B, GPT3_175B.tokens(8))
        cfg = pass_config(plans[0], "fwd", Mesh2D(4, 4), slices=4)
        assert cfg.slices == 4
        assert cfg.shape == plans[0].pass_plan("fwd").shape

    def test_utilization_map_preserves_none(self):
        runs = {
            "present": best_block_run("meshslice", GPT3_175B, 8, 16, TPUV4),
            "absent": None,
        }
        utils = utilization_map(runs, TPUV4)
        assert utils["absent"] is None
        assert 0 < utils["present"] < 1
