"""Tests for elastic reshard migrations (repro.recovery.elastic)."""

import pytest

from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.models import GPT3_175B
from repro.recovery import (
    MIGRATION_PLANES,
    ReshardPlan,
    build_migration_program,
    migration_payload_bytes,
    migration_seconds,
    overlap_pieces,
)
from repro.sim import simulate

PAYLOAD = 64e9


class TestOverlapPieces:
    def test_coarsening_touches_ratio_plus_one(self):
        # 12 source intervals re-blocked into 5: each new interval
        # spans at most floor(12/5) + 1 = 3 old ones.
        assert overlap_pieces(12, 5) == 3

    def test_refining_touches_at_most_two(self):
        # A finer target interval crosses at most one old boundary.
        assert overlap_pieces(3, 8) == 1
        assert overlap_pieces(5, 4) == 2

    def test_never_exceeds_source_owners(self):
        assert overlap_pieces(4, 1) == 4
        for src in range(1, 20):
            for dst in range(1, 20):
                assert 1 <= overlap_pieces(src, dst) <= src

    def test_validation(self):
        with pytest.raises(ValueError):
            overlap_pieces(0, 4)
        with pytest.raises(ValueError):
            overlap_pieces(4, 0)


class TestReshardPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReshardPlan(Mesh2D(4, 4), Mesh2D(3, 5), payload_bytes=-1.0)
        with pytest.raises(ValueError):
            ReshardPlan(Mesh2D(4, 4), Mesh2D(3, 5), PAYLOAD, plane="rdma")

    def test_replacement_detection(self):
        assert ReshardPlan(Mesh2D(4, 4), Mesh2D(4, 4), PAYLOAD).is_replacement
        assert not ReshardPlan(
            Mesh2D(4, 4), Mesh2D(3, 5), PAYLOAD
        ).is_replacement

    def test_shard_bytes(self):
        plan = ReshardPlan(Mesh2D(4, 4), Mesh2D(3, 5), PAYLOAD)
        assert plan.source_shard_bytes == pytest.approx(PAYLOAD / 16)
        assert plan.target_shard_bytes == pytest.approx(PAYLOAD / 15)

    def test_reshape_pieces_multiply_per_axis(self):
        plan = ReshardPlan(Mesh2D(4, 4), Mesh2D(3, 5), PAYLOAD)
        expected = overlap_pieces(4, 3) * overlap_pieces(4, 5)
        assert plan.pieces == expected

    def test_replacement_pieces_come_from_the_stripe_ring(self):
        # Replacement refills the dead shard from its row-ring peers.
        plan = ReshardPlan(Mesh2D(4, 4), Mesh2D(4, 4), PAYLOAD)
        assert plan.pieces == 3
        column = ReshardPlan(Mesh2D(4, 1), Mesh2D(4, 1), PAYLOAD)
        assert column.pieces == 3


class TestMigrationPrograms:
    def test_onesided_reshape_structure(self):
        plan = ReshardPlan(Mesh2D(4, 4), Mesh2D(3, 5), PAYLOAD)
        program = build_migration_program(plan, TPUV4)
        names = [a.label for a in program.activities]
        assert "reshard/get-h" in names
        assert "reshard/get-v" in names
        assert "reshard/writeback" in names
        assert "reshard/fence" in names
        assert program.meta["plane"] == "onesided"
        assert program.meta["kind"] == "reshard"

    def test_collective_reshape_gathers_each_changed_axis(self):
        plan = ReshardPlan(
            Mesh2D(4, 4), Mesh2D(3, 5), PAYLOAD, plane="collective"
        )
        names = [a.label for a in build_migration_program(plan, TPUV4).activities]
        assert any(n.startswith("reshard/ag-row") for n in names)
        assert any(n.startswith("reshard/ag-col") for n in names)

    def test_collective_replacement_gathers_one_stripe(self):
        plan = ReshardPlan(
            Mesh2D(4, 4), Mesh2D(4, 4), PAYLOAD, plane="collective"
        )
        names = [a.label for a in build_migration_program(plan, TPUV4).activities]
        assert any(n.startswith("reshard/ag-stripe") for n in names)
        assert not any(n.startswith("reshard/ag-row") for n in names)

    def test_unchanged_row_axis_skips_the_column_gather(self):
        plan = ReshardPlan(
            Mesh2D(4, 4), Mesh2D(4, 2), PAYLOAD, plane="collective"
        )
        names = [a.label for a in build_migration_program(plan, TPUV4).activities]
        assert any(n.startswith("reshard/ag-row") for n in names)
        assert not any(n.startswith("reshard/ag-col") for n in names)

    def test_every_plane_simulates_to_positive_makespan(self):
        for plane in MIGRATION_PLANES:
            for target in (Mesh2D(4, 4), Mesh2D(3, 5), Mesh2D(4, 3)):
                plan = ReshardPlan(Mesh2D(4, 4), target, PAYLOAD, plane)
                result = simulate(build_migration_program(plan, TPUV4), TPUV4)
                assert result.failure is None
                assert result.makespan > 0.0


class TestMigrationSeconds:
    def test_matches_direct_simulation(self):
        plan = ReshardPlan(Mesh2D(4, 4), Mesh2D(3, 5), PAYLOAD)
        direct = simulate(build_migration_program(plan, TPUV4), TPUV4).makespan
        assert migration_seconds(plan, TPUV4) == pytest.approx(direct)

    def test_memoized_revisit_is_identical(self):
        plan = ReshardPlan(Mesh2D(4, 4), Mesh2D(4, 4), PAYLOAD)
        assert migration_seconds(plan, TPUV4) == migration_seconds(plan, TPUV4)

    def test_onesided_avoids_collective_replication(self):
        """A shape change replicates blocks on the collective plane but
        moves only changed bytes one-sided, so one-sided must win."""
        onesided = migration_seconds(
            ReshardPlan(Mesh2D(4, 4), Mesh2D(3, 5), PAYLOAD), TPUV4
        )
        collective = migration_seconds(
            ReshardPlan(Mesh2D(4, 4), Mesh2D(3, 5), PAYLOAD, "collective"),
            TPUV4,
        )
        assert onesided < collective

    def test_collective_replacement_cheaper_than_reshape(self):
        """Gathering one stripe beats replicating blocks on both axes.

        (Only claimed on the collective plane: one-sided reshapes
        split their wire time across both link directions, so the
        single-ring replacement fetch is not strictly cheaper there.)
        """
        replace = migration_seconds(
            ReshardPlan(Mesh2D(4, 4), Mesh2D(4, 4), PAYLOAD, "collective"),
            TPUV4,
        )
        reshape = migration_seconds(
            ReshardPlan(Mesh2D(4, 4), Mesh2D(3, 5), PAYLOAD, "collective"),
            TPUV4,
        )
        assert replace < reshape


class TestMigrationPayload:
    def test_includes_weights_optimizer_and_activations(self):
        payload = migration_payload_bytes(GPT3_175B, 16, TPUV4)
        weights_floor = GPT3_175B.approx_params * TPUV4.dtype_bytes
        assert payload > weights_floor

    def test_scales_with_batch(self):
        small = migration_payload_bytes(GPT3_175B, 1, TPUV4)
        large = migration_payload_bytes(GPT3_175B, 64, TPUV4)
        assert large > small

    def test_validation(self):
        with pytest.raises(ValueError):
            migration_payload_bytes(GPT3_175B, 0, TPUV4)
