"""Cross-algorithm conformance: one battery, every registered algorithm.

Any algorithm that enters ``algorithm_names()`` is automatically pulled
through the same four contracts, so the zoo cannot grow an algorithm
that silently breaks them:

* **functional bit-exactness** — integer-valued float64 operands make
  every summation order produce identical bits, so the functional
  plane must equal ``A @ B`` exactly, not approximately;
* **null-fault-plan bit-identity** — running under ``FaultPlan()``
  must produce the very same spans as running with no plan at all;
* **three-engine identity** — the reference engine (tests'
  ``reference_engine.py``), the event-heap engine, and the compiled
  engine must emit identical span lists for the same program;
* **metrics-delta determinism** — simulating the whole zoo must emit
  byte-identical metric records across ``PYTHONHASHSEED`` values.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from reference_engine import ReferenceEngine

from repro.algorithms import GeMMConfig, algorithm_names, get_algorithm
from repro.core import Dataflow, GeMMShape
from repro.faults import FaultPlan
from repro.hw import HardwareParams
from repro.mesh import Mesh2D

SRC = str(Path(__file__).resolve().parent.parent / "src")
TESTS = str(Path(__file__).resolve().parent)


def conformance_config(name: str) -> GeMMConfig:
    """A small supported output-stationary config for each algorithm."""
    shape = GeMMShape(16, 16, 16)
    if name in ("1dtp", "fsdp"):
        return GeMMConfig(shape, Mesh2D(1, 4), Dataflow.OS, slices=2)
    if name in ("cannon", "collective"):
        return GeMMConfig(shape, Mesh2D(2, 2), Dataflow.OS, slices=1)
    if name == "sfc":
        # slices = tiles per chip: a 2x2 tile block per chip (4x4 grid).
        return GeMMConfig(shape, Mesh2D(2, 2), Dataflow.OS, slices=4)
    if name in ("meshslice", "sliced", "summa", "wang"):
        return GeMMConfig(shape, Mesh2D(2, 2), Dataflow.OS, slices=2)
    raise KeyError(
        f"algorithm {name!r} has no conformance config; every "
        "registered algorithm must be covered here"
    )


def integer_operands(cfg: GeMMConfig):
    """Integer-valued float64 operands: exact under any summation order."""
    rng = np.random.default_rng(42)
    m, n, k = cfg.shape.m, cfg.shape.n, cfg.shape.k
    a = rng.integers(-8, 9, size=(m, k)).astype(np.float64)
    b = rng.integers(-8, 9, size=(k, n)).astype(np.float64)
    return a, b


ALL_NAMES = algorithm_names()


class TestCoverage:
    def test_every_registered_algorithm_has_a_config(self):
        for name in ALL_NAMES:
            cfg = conformance_config(name)
            reason = get_algorithm(name).check_support(cfg)
            assert reason is None, f"{name}: unsupported config: {reason}"


class TestFunctionalBitExactness:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_bit_exact_vs_dense(self, name):
        cfg = conformance_config(name)
        a, b = integer_operands(cfg)
        result = get_algorithm(name).functional(a, b, cfg)
        assert result.dtype == np.float64
        assert np.array_equal(result, a @ b), f"{name} not bit-exact"


class TestNullFaultPlanIdentity:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_null_plan_spans_are_bit_identical(self, name):
        cfg = conformance_config(name)
        program = get_algorithm(name).build_program(cfg, HardwareParams())
        bare = program.run()
        under_null = program.run(faults=FaultPlan())
        assert bare == under_null


class TestThreeEngineIdentity:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_reference_heap_compiled_agree(self, name):
        cfg = conformance_config(name)
        program = get_algorithm(name).build_program(cfg, HardwareParams())
        reference = ReferenceEngine(
            program.activities, program.shared_capacities
        ).run()
        heap = program.run(engine="heap")
        compiled = program.run(engine="compiled")
        assert heap == reference, f"{name}: heap != reference"
        assert compiled == reference, f"{name}: compiled != reference"


#: Run the whole zoo (simulation + functional) and dump metric records.
ZOO_SCRIPT = """
import sys

import numpy as np

from repro.algorithms import algorithm_names, get_algorithm
from repro.hw import HardwareParams
from repro.obs.export import collect_records, dumps_records
from test_algorithm_conformance import conformance_config, integer_operands

hw = HardwareParams()
for name in algorithm_names():
    cfg = conformance_config(name)
    alg = get_algorithm(name)
    spans = alg.build_program(cfg, hw).run()
    a, b = integer_operands(cfg)
    exact = np.array_equal(alg.functional(a, b, cfg), a @ b)
    sys.stdout.write(
        f"{name} makespan={max(s.end for s in spans):.9e} exact={exact}\\n"
    )
sys.stdout.write(dumps_records(collect_records()))
"""


def _run_zoo(hashseed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        SRC + os.pathsep + TESTS + os.pathsep + env.get("PYTHONPATH", "")
    )
    env["PYTHONHASHSEED"] = hashseed
    env.pop("REPRO_NO_METRICS", None)
    proc = subprocess.run(
        [sys.executable, "-c", ZOO_SCRIPT],
        capture_output=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


class TestMetricsDeltaDeterminism:
    def test_byte_identical_across_hash_seeds(self):
        first = _run_zoo("0")
        second = _run_zoo("31337")
        assert first == second
        for name in ALL_NAMES:
            assert f"{name} ".encode() in first
        assert b"exact=False" not in first
