"""The resumable, fail-soft campaign runner."""

import os

import pytest

from repro.campaign import CampaignRunner, CampaignStore, point_key
from repro.obs.registry import registry


def _square(n):
    return n * n


def _fail_on_three(n):
    if n == 3:
        raise ValueError("boom on 3")
    return n


def _flaky(point):
    """Fails once per marker path, then succeeds: a transient fault."""
    n, marker = point
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempted")
        raise RuntimeError("transient")
    return n


def _store_bytes(store, name):
    with open(store.path_for(name), "rb") as handle:
        return handle.read()


class TestCampaignRunner:
    def test_cold_run_records_every_point(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        runner = CampaignRunner(store, "demo", _square, jobs=1)
        summary = runner.run([1, 2, 3])
        assert (summary.total, summary.ran, summary.ok) == (3, 3, 3)
        assert summary.failed == 0 and summary.skipped == 0
        assert summary.complete
        records = store.load("demo")
        assert [r["result"] for r in records.values()] == [1, 4, 9]

    def test_records_append_in_input_point_order(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        points = [5, 1, 4, 2]
        CampaignRunner(store, "demo", _square, jobs=1).run(points)
        keys = list(store.load("demo"))
        assert keys == [point_key("demo", p) for p in points]

    def test_second_run_is_idempotent(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        runner = CampaignRunner(store, "demo", _square, jobs=1)
        runner.run([1, 2, 3])
        first = _store_bytes(store, "demo")
        summary = runner.run([1, 2, 3])
        assert summary.ran == 0 and summary.skipped == 3
        assert summary.complete
        assert _store_bytes(store, "demo") == first

    def test_resume_after_partial_run_fills_the_gap(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        runner = CampaignRunner(store, "demo", _square, jobs=1)
        runner.run([1, 2])  # the "killed early" prefix
        partial = _store_bytes(store, "demo")
        summary = runner.run([1, 2, 3, 4])
        assert summary.ran == 2 and summary.skipped == 2
        resumed = _store_bytes(store, "demo")
        assert resumed.startswith(partial)
        cold = CampaignStore(str(tmp_path / "cold"))
        CampaignRunner(cold, "demo", _square, jobs=1).run([1, 2, 3, 4])
        assert resumed == _store_bytes(cold, "demo")

    def test_failed_points_record_fail_soft(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        runner = CampaignRunner(
            store, "demo", _fail_on_three, retries=0, jobs=1
        )
        summary = runner.run([1, 2, 3, 4])
        assert summary.ran == 4 and summary.ok == 3 and summary.failed == 1
        assert summary.complete  # fail-soft still covers the grid
        record = store.load("demo")[point_key("demo", 3)]
        assert record["status"] == "failed" and record["result"] is None
        assert record["error"]["type"] == "ValueError"
        assert "boom on 3" in record["error"]["message"]
        # The worker-side stack survives into the record: the original
        # exception object dies at the pool boundary, but the record
        # still says where the point failed.
        assert "_fail_on_three" in record["error"]["traceback"]
        assert "ValueError: boom on 3" in record["error"]["traceback"]

    def test_failed_points_record_traceback_across_pool(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        runner = CampaignRunner(
            store, "demo", _fail_on_three, retries=0, jobs=2
        )
        runner.run([1, 2, 3, 4])
        record = store.load("demo")[point_key("demo", 3)]
        assert "_fail_on_three" in record["error"]["traceback"]

    def test_failed_points_are_terminal_on_resume(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        runner = CampaignRunner(
            store, "demo", _fail_on_three, retries=0, jobs=1
        )
        runner.run([3])
        summary = runner.run([3])
        assert summary.ran == 0 and summary.skipped == 1

    def test_retry_failed_appends_superseding_record(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        CampaignRunner(store, "demo", _fail_on_three, retries=0,
                       jobs=1).run([3])
        marker = str(tmp_path / "flaky-3")
        point = (3, marker)
        CampaignRunner(store, "demo", _flaky, retries=0, jobs=1,
                       backoff_s=0.0).run([point])
        # Same key never stored: different point tuple. Re-run the
        # original failure with a now-succeeding function instead.
        retry = CampaignRunner(store, "demo", _square, retries=0,
                               jobs=1, retry_failed=True)
        summary = retry.run([3])
        assert summary.ran == 1 and summary.ok == 1
        record = store.load("demo")[point_key("demo", 3)]
        assert record["status"] == "ok" and record["result"] == 9
        with open(store.path_for("demo")) as handle:
            lines = handle.readlines()
        assert len(lines) == 3  # superseded by append, not rewrite

    def test_retries_rescue_transient_failures(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        before = registry().counter_value("campaign.retries")
        point = (7, str(tmp_path / "marker"))
        summary = CampaignRunner(
            store, "demo", _flaky, retries=1, backoff_s=0.0, jobs=1
        ).run([point])
        assert summary.ok == 1 and summary.failed == 0
        assert registry().counter_value("campaign.retries") == before + 1
        assert store.load("demo")[point_key("demo", point)]["result"] == 7

    def test_zero_retries_fail_immediately(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        point = (7, str(tmp_path / "marker"))
        summary = CampaignRunner(
            store, "demo", _flaky, retries=0, jobs=1
        ).run([point])
        assert summary.failed == 1
        record = store.load("demo")[point_key("demo", point)]
        assert record["error"]["type"] == "RuntimeError"

    def test_duplicate_points_run_once(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        summary = CampaignRunner(store, "demo", _square, jobs=1).run(
            [2, 2, 3]
        )
        assert summary.total == 3 and summary.duplicates == 1
        assert summary.ran == 2 and summary.complete
        assert len(store.load("demo")) == 2

    def test_repair_runs_before_resume(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        runner = CampaignRunner(store, "demo", _square, jobs=1)
        runner.run([1, 2])
        with open(store.path_for("demo"), "ab") as handle:
            handle.write(b'{"torn": ')  # killed mid-append
        summary = runner.run([1, 2, 3])
        assert summary.quarantined == 1
        assert summary.ran == 1 and summary.skipped == 2
        cold = CampaignStore(str(tmp_path / "cold"))
        CampaignRunner(cold, "demo", _square, jobs=1).run([1, 2, 3])
        assert _store_bytes(store, "demo") == _store_bytes(cold, "demo")

    def test_parallel_store_matches_serial_bytes(self, tmp_path):
        serial = CampaignStore(str(tmp_path / "serial"))
        CampaignRunner(serial, "demo", _square, jobs=1).run(range(6))
        pooled = CampaignStore(str(tmp_path / "pooled"))
        summary = CampaignRunner(pooled, "demo", _square, jobs=2).run(
            range(6)
        )
        assert summary.ok == 6
        assert _store_bytes(serial, "demo") == _store_bytes(pooled, "demo")

    def test_string_store_root_accepted(self, tmp_path):
        runner = CampaignRunner(str(tmp_path), "demo", _square, jobs=1)
        runner.run([2])
        assert runner.store.load("demo")[point_key("demo", 2)][
            "result"
        ] == 4

    @pytest.mark.parametrize("kwargs", [
        {"retries": -1},
        {"backoff_s": -0.1},
        {"backoff_cap_s": -1.0},
    ])
    def test_invalid_knobs_rejected(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            CampaignRunner(str(tmp_path), "demo", _square, **kwargs)
