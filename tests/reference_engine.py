"""Frozen copy of the seed step-loop simulation engine.

This is the original ``repro.sim.engine.Engine`` implementation, kept
verbatim as the behavioral reference for the event-driven engine that
replaced it. ``tests/test_engine_equivalence.py`` pins the production
engine's ``Span`` lists bit-exactly against this one on representative
programs, so any scheduling or floating-point divergence introduced by
future engine work fails loudly.

Do not "improve" this module: its step loop (full ready-list rescan and
full rate recompute per event) is intentionally the slow-but-obviously-
correct formulation. It shares ``Activity``/``Span``/``SimulationError``
with the production engine so both can execute the same program objects.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.engine import Activity, SimulationError, Span

_EPS = 1e-15


class ReferenceEngine:
    """The seed engine: one full rescan of every structure per event."""

    def __init__(
        self,
        activities: Sequence[Activity],
        shared_capacities: Optional[Dict[str, float]] = None,
    ):
        self.activities = {a.aid: a for a in activities}
        if len(self.activities) != len(activities):
            raise SimulationError("duplicate activity ids")
        for act in activities:
            for dep in act.deps:
                if dep not in self.activities:
                    raise SimulationError(
                        f"activity {act.label!r} depends on unknown id {dep}"
                    )
        self.shared_capacities = dict(shared_capacities or {})

    def run(self) -> List[Span]:
        """Execute the DAG; returns spans sorted by start time."""
        acts = self.activities
        remaining_deps = {aid: set(a.deps) for aid, a in acts.items()}
        dependents: Dict[int, List[int]] = {aid: [] for aid in acts}
        for aid, act in acts.items():
            for dep in act.deps:
                dependents[dep].append(aid)

        ready: List[Tuple[float, int]] = [
            (0.0, aid) for aid, deps in remaining_deps.items() if not deps
        ]
        ready.sort(key=lambda item: (item[0], item[1]))
        busy: Dict[str, int] = {}
        running: Dict[int, _Running] = {}
        spans: List[Span] = []
        finished = set()
        now = 0.0
        # Guard against infinite loops on malformed inputs.
        max_steps = 10 * len(acts) + 100

        for _step in itertools.count():
            if _step > max_steps:
                raise SimulationError("simulation did not converge (internal error)")
            self._start_ready(ready, busy, running, acts, now)
            if not running:
                if any(remaining_deps[aid] for aid in acts if aid not in finished):
                    unresolved = [
                        acts[aid].label
                        for aid in acts
                        if aid not in finished and remaining_deps[aid]
                    ]
                    raise SimulationError(
                        f"dependency cycle or starvation among: {unresolved[:5]}"
                    )
                if len(finished) == len(acts):
                    break
                raise SimulationError("no runnable activities but work remains")
            rates = self._compute_rates(running)
            dt = min(
                run.remaining / rates[aid] for aid, run in running.items()
            )
            if dt < 0:
                raise SimulationError("negative time step (internal error)")
            now += dt
            completed = []
            for aid, run in running.items():
                run.remaining -= rates[aid] * dt
                if run.remaining <= _EPS * max(1.0, run.nominal):
                    completed.append(aid)
            for aid in completed:
                run = running.pop(aid)
                act = acts[aid]
                for res in act.exclusive:
                    del busy[res]
                spans.append(
                    Span(
                        aid=aid,
                        label=act.label,
                        kind=act.kind,
                        start=run.start,
                        end=now,
                        exclusive=act.exclusive,
                        meta=act.meta,
                    )
                )
                finished.add(aid)
                for child in dependents[aid]:
                    remaining_deps[child].discard(aid)
                    if not remaining_deps[child]:
                        ready.append((now, child))
            ready.sort(key=lambda item: (item[0], item[1]))

        spans.sort(key=lambda s: (s.start, s.aid))
        return spans

    def _start_ready(
        self,
        ready: List[Tuple[float, int]],
        busy: Dict[str, int],
        running: Dict[int, "_Running"],
        acts: Dict[int, Activity],
        now: float,
    ) -> None:
        """Start every ready activity whose exclusive resources are free.

        Scans in (ready-time, id) order so that an activity blocked on
        the core does not prevent a later link activity from starting.
        """
        still_waiting: List[Tuple[float, int]] = []
        for ready_time, aid in ready:
            act = acts[aid]
            if any(res in busy for res in act.exclusive):
                still_waiting.append((ready_time, aid))
                continue
            for res in act.exclusive:
                busy[res] = aid
            running[aid] = _Running(
                start=now,
                remaining=max(act.duration, 0.0),
                nominal=max(act.duration, _EPS),
            )
        ready[:] = still_waiting

    def _compute_rates(self, running: Dict[int, "_Running"]) -> Dict[int, float]:
        """Proportional-share progress rates under shared capacities."""
        totals: Dict[str, float] = {}
        for aid in running:
            for res, demand in self.activities[aid].shared.items():
                totals[res] = totals.get(res, 0.0) + demand
        factors: Dict[str, float] = {}
        for res, total in totals.items():
            capacity = self.shared_capacities.get(res)
            if capacity is None or total <= capacity or total <= 0:
                factors[res] = 1.0
            else:
                factors[res] = capacity / total
        rates = {}
        for aid in running:
            act = self.activities[aid]
            rate = 1.0
            for res in act.shared:
                rate = min(rate, factors[res])
            rates[aid] = max(rate, _EPS)
        return rates


@dataclasses.dataclass
class _Running:
    start: float
    remaining: float
    nominal: float
