"""End-to-end functional verification of Table 1's training GeMMs.

For each stationary-matrix row of Table 1 this test executes the full
training step of one FC layer ``Y = X W`` — forward, backward-data
(``X' = Y' Wᵀ``), backward-weight (``W' = Xᵀ Y'``) — through the
*functional MeshSlice plane*, with the operand orientations the
autotuner's plans prescribe, and compares every result against plain
numpy calculus. This closes the loop: the dataflow table, the
operand-orientation bookkeeping, and the sliced 2D GeMM all have to be
simultaneously correct for these to pass.
"""

import numpy as np
import pytest

from repro.autotuner import pass_plans
from repro.core import (
    Dataflow,
    meshslice_gemm,
)
from repro.mesh import Mesh2D

M, N, K = 24, 36, 48
MESH = Mesh2D(2, 2)
SLICES = 2


@pytest.fixture
def tensors(rng):
    x = rng.standard_normal((M, K))
    w = rng.standard_normal((K, N))
    grad_y = rng.standard_normal((M, N))
    return x, w, grad_y


def run_pass(dataflow, a, b):
    return meshslice_gemm(a, b, MESH, dataflow, SLICES, block=1)


class TestYStationaryRow:
    """Y-stn: Y = OS(X, W); X' = LS(Y', W); W' = RS(X, Y')."""

    def test_forward(self, tensors):
        x, w, _ = tensors
        y = run_pass(Dataflow.OS, x, w)
        assert np.allclose(y, x @ w)

    def test_backward_data(self, tensors):
        x, w, grad_y = tensors
        grad_x = run_pass(Dataflow.LS, grad_y, w)
        assert np.allclose(grad_x, grad_y @ w.T)

    def test_backward_weight(self, tensors):
        x, w, grad_y = tensors
        grad_w = run_pass(Dataflow.RS, x, grad_y)
        assert np.allclose(grad_w, x.T @ grad_y)

    def test_shapes_match_pass_plans(self, tensors):
        plans = {p.pass_name: p for p in pass_plans("Y", M, K, N)}
        assert plans["fwd"].shape.as_tuple() == (M, N, K)
        assert plans["bwd_data"].shape.as_tuple() == (M, K, N)
        assert plans["bwd_weight"].shape.as_tuple() == (K, N, M)


class TestXStationaryRow:
    """X-stn: Y = LS(X, Wᵀ); X' = OS(Y', Wᵀ); W'ᵀ = RS(Y', X).

    The weight is stored statically transposed (``N x K``) and never
    re-transposed at runtime.
    """

    def test_forward(self, tensors):
        x, w, _ = tensors
        w_t = np.ascontiguousarray(w.T)  # static transposition at init
        y = run_pass(Dataflow.LS, x, w_t)
        assert np.allclose(y, x @ w)

    def test_backward_data(self, tensors):
        x, w, grad_y = tensors
        w_t = np.ascontiguousarray(w.T)
        grad_x = run_pass(Dataflow.OS, grad_y, w_t)
        assert np.allclose(grad_x, grad_y @ w.T)

    def test_backward_weight_produces_transposed_gradient(self, tensors):
        """W-gradient arrives transposed — matching the transposed
        storage, so the optimizer update needs no transposition."""
        x, w, grad_y = tensors
        grad_w_t = run_pass(Dataflow.RS, grad_y, x)
        assert np.allclose(grad_w_t, (x.T @ grad_y).T)

    def test_shapes_match_pass_plans(self):
        plans = {p.pass_name: p for p in pass_plans("X", M, K, N)}
        assert plans["bwd_weight"].shape.as_tuple() == (N, K, M)


class TestWStationaryRow:
    """W-stn: Y = RS(Xᵀ, W); X'ᵀ = LS(W, Y'); W' = OS(Xᵀ, Y').

    The input arrives transposed (``K x M``) — the orientation the
    transposition heuristic tracks between layers.
    """

    def test_forward(self, tensors):
        x, w, _ = tensors
        x_t = np.ascontiguousarray(x.T)
        y = run_pass(Dataflow.RS, x_t, w)
        assert np.allclose(y, x @ w)

    def test_backward_data_produces_transposed_gradient(self, tensors):
        x, w, grad_y = tensors
        grad_x_t = run_pass(Dataflow.LS, w, grad_y)
        assert np.allclose(grad_x_t, (grad_y @ w.T).T)

    def test_backward_weight(self, tensors):
        x, w, grad_y = tensors
        x_t = np.ascontiguousarray(x.T)
        grad_w = run_pass(Dataflow.OS, x_t, grad_y)
        assert np.allclose(grad_w, x.T @ grad_y)


class TestGradientCheck:
    """The chain closed numerically: a finite-difference check of the
    distributed backward pass against the distributed forward pass."""

    def test_weight_gradient_finite_difference(self, rng):
        x = rng.standard_normal((8, 8))
        w = rng.standard_normal((8, 8))
        mesh = Mesh2D(2, 2)

        def loss(weights):
            y = meshslice_gemm(x, weights, mesh, Dataflow.OS, 2, block=1)
            return 0.5 * np.sum(y * y)

        y = meshslice_gemm(x, w, mesh, Dataflow.OS, 2, block=1)
        grad_w = meshslice_gemm(x, y, mesh, Dataflow.RS, 2, block=1)

        eps = 1e-6
        for index in [(0, 0), (3, 5), (7, 7)]:
            bump = np.zeros_like(w)
            bump[index] = eps
            numeric = (loss(w + bump) - loss(w - bump)) / (2 * eps)
            assert numeric == pytest.approx(grad_w[index], rel=1e-4)
