"""Tests for the recovery subsystem: retry, degraded mesh, checkpoint."""

import math

import pytest

from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.models import GPT3_175B
from repro.recovery import (
    CheckpointModel,
    ClusterReliability,
    NoSurvivingMeshError,
    RetryPolicy,
    cluster_mtbf,
    degrade_goodput,
    degraded_meshes,
    restart_goodput,
    retune_degraded,
)


class TestCheckpointModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointModel(mtbf=0.0, checkpoint_seconds=1.0)
        with pytest.raises(ValueError):
            CheckpointModel(mtbf=1.0, checkpoint_seconds=0.0)
        with pytest.raises(ValueError):
            CheckpointModel(mtbf=1.0, checkpoint_seconds=1.0,
                            restart_seconds=-1.0)

    def test_young_closed_form(self):
        model = CheckpointModel(mtbf=1e6, checkpoint_seconds=50.0)
        assert model.young_interval == pytest.approx(math.sqrt(2 * 50.0 * 1e6))

    def test_daly_below_young_and_reduces_to_it(self):
        model = CheckpointModel(mtbf=1e6, checkpoint_seconds=50.0)
        # For delta << M the two closed forms agree to first order...
        assert model.daly_interval == pytest.approx(
            model.young_interval, rel=5e-3
        )
        # ...and Daly's delta subtraction keeps it strictly below.
        assert model.daly_interval < model.young_interval

    def test_daly_saturates_at_mtbf(self):
        model = CheckpointModel(mtbf=100.0, checkpoint_seconds=500.0)
        assert model.daly_interval == 100.0

    def test_optimum_matches_young_daly_within_1pct(self):
        """Acceptance criterion: numeric optimum vs closed form < 1%."""
        for mtbf, delta in [(1e6, 50.0), (86400.0, 60.0), (3600.0 * 24, 10.0)]:
            model = CheckpointModel(mtbf=mtbf, checkpoint_seconds=delta)
            opt = model.optimal_interval()
            assert opt == pytest.approx(model.daly_interval, rel=0.01)
            # Young's first-order form is a touch coarser (it ignores
            # the checkpoint's own duration inside the lost-work term).
            assert opt == pytest.approx(model.young_interval, rel=0.02)

    def test_optimum_actually_maximizes_goodput(self):
        model = CheckpointModel(
            mtbf=86400.0, checkpoint_seconds=60.0, restart_seconds=120.0
        )
        opt = model.optimal_interval()
        best = model.goodput(opt)
        for factor in (0.25, 0.5, 2.0, 4.0):
            assert model.goodput(opt * factor) <= best

    def test_restart_cost_does_not_shift_optimum(self):
        """e^{R/M} multiplies E[T] uniformly, so tau* is R-free."""
        base = CheckpointModel(mtbf=86400.0, checkpoint_seconds=60.0)
        costly = CheckpointModel(
            mtbf=86400.0, checkpoint_seconds=60.0, restart_seconds=600.0
        )
        assert costly.optimal_interval() == pytest.approx(
            base.optimal_interval(), rel=1e-6
        )
        assert costly.optimal_goodput() < base.optimal_goodput()

    def test_goodput_bounds_and_wall(self):
        model = CheckpointModel(mtbf=86400.0, checkpoint_seconds=60.0)
        g = model.optimal_goodput()
        assert 0.0 < g < 1.0
        assert model.expected_total_wall(1000.0) == pytest.approx(1000.0 / g)
        assert model.expected_total_wall(0.0) == 0.0

    def test_cluster_mtbf(self):
        assert cluster_mtbf(1000.0, 10) == 100.0
        with pytest.raises(ValueError):
            cluster_mtbf(0.0, 10)
        with pytest.raises(ValueError):
            cluster_mtbf(1000.0, 0)


class TestDegradedMeshes:
    def test_every_dead_chip_on_4x4_and_up(self):
        """Acceptance criterion: valid shrunk mesh for any single dead
        chip on >= 4x4 meshes."""
        for shape in [(4, 4), (4, 8), (8, 4), (5, 7)]:
            mesh = Mesh2D(*shape)
            for dead in mesh.coords():
                candidates = degraded_meshes(mesh, dead)
                assert len(candidates) == 2
                drop_row, drop_col = candidates
                assert drop_row.shape == (mesh.rows - 1, mesh.cols)
                assert drop_col.shape == (mesh.rows, mesh.cols - 1)

    def test_independent_of_which_chip_died(self):
        mesh = Mesh2D(4, 4)
        baseline = degraded_meshes(mesh, (0, 0))
        for dead in mesh.coords():
            assert degraded_meshes(mesh, dead) == baseline

    def test_degenerate_meshes(self):
        assert degraded_meshes(Mesh2D(1, 4), (0, 2)) == (Mesh2D(1, 3),)
        assert degraded_meshes(Mesh2D(4, 1), (2, 0)) == (Mesh2D(3, 1),)
        # No survivors is a structured empty result, not an error.
        assert degraded_meshes(Mesh2D(1, 1), (0, 0)) == ()
        with pytest.raises(ValueError):
            degraded_meshes(Mesh2D(4, 4), (5, 0))

    def test_no_surviving_mesh_raises_named_error(self):
        with pytest.raises(NoSurvivingMeshError):
            retune_degraded(GPT3_175B, 16, Mesh2D(1, 1), (0, 0), TPUV4)
        # The named error is still a ValueError for legacy callers.
        assert issubclass(NoSurvivingMeshError, ValueError)
        # An off-mesh coordinate is an argument error, not exhaustion.
        with pytest.raises(ValueError) as err:
            retune_degraded(GPT3_175B, 16, Mesh2D(4, 4), (5, 0), TPUV4)
        assert not isinstance(err.value, NoSurvivingMeshError)

    def test_without_row_col_validation(self):
        mesh = Mesh2D(3, 4)
        assert mesh.without_row(1).shape == (2, 4)
        assert mesh.without_col(3).shape == (3, 3)
        with pytest.raises(IndexError):
            mesh.without_row(3)
        with pytest.raises(IndexError):
            mesh.without_col(4)
        with pytest.raises(ValueError):
            Mesh2D(1, 4).without_row(0)
        with pytest.raises(ValueError):
            Mesh2D(4, 1).without_col(0)


class TestRetuneDegraded:
    def test_matches_exhaustive_search_on_small_mesh(self):
        """Acceptance criterion: the re-tuned configuration equals a
        brute-force search over the surviving shapes."""
        from repro.autotuner.dataflow import plan_model
        from repro.autotuner.search import tune_mesh

        mesh = Mesh2D(4, 4)
        batch = 8
        retune = retune_degraded(GPT3_175B, batch, mesh, (1, 2), TPUV4)
        plans = plan_model(GPT3_175B, GPT3_175B.tokens(batch))
        exhaustive = {}
        for candidate in degraded_meshes(mesh, (1, 2)):
            _tuned, total = tune_mesh(plans, candidate, TPUV4)
            exhaustive[candidate.shape] = total
        best_shape = min(exhaustive, key=lambda s: exhaustive[s])
        assert retune.mesh.shape == best_shape
        assert retune.block_seconds == pytest.approx(exhaustive[best_shape])
        assert retune.result.per_mesh_seconds == pytest.approx(exhaustive)

    def test_metadata(self):
        mesh = Mesh2D(4, 4)
        retune = retune_degraded(GPT3_175B, 8, mesh, (0, 0), TPUV4)
        assert retune.original is mesh
        assert retune.dead == (0, 0)
        assert retune.dropped in ("row", "col")
        assert retune.surviving_chips == 12
        assert retune.mesh.shape in ((3, 4), (4, 3))

    def test_dead_chip_coordinate_irrelevant(self):
        mesh = Mesh2D(4, 4)
        baseline = retune_degraded(GPT3_175B, 8, mesh, (0, 0), TPUV4)
        other = retune_degraded(GPT3_175B, 8, mesh, (3, 1), TPUV4)
        assert other.mesh == baseline.mesh
        assert other.block_seconds == baseline.block_seconds


class TestMemoizedDegradedRetune:
    def test_identity_and_counters(self, monkeypatch):
        from repro.perf import cache_stats, clear_caches
        from repro.perf.cache import KILL_SWITCH_ENV
        from repro.perf.pipeline import degraded_retune

        # Opt back into caching even under the CI no-cache lane.
        monkeypatch.delenv(KILL_SWITCH_ENV, raising=False)
        clear_caches()
        mesh = Mesh2D(4, 4)
        first = degraded_retune(GPT3_175B, 8, mesh, (0, 0), TPUV4)
        stats = cache_stats()["degraded_retune"]
        assert (stats.hits, stats.misses) == (0, 1)
        again = degraded_retune(GPT3_175B, 8, mesh, (0, 0), TPUV4)
        assert again is first
        stats = cache_stats()["degraded_retune"]
        assert (stats.hits, stats.misses) == (1, 1)

    def test_matches_unmemoized(self):
        from repro.perf.pipeline import degraded_retune

        mesh = Mesh2D(4, 4)
        cached = degraded_retune(GPT3_175B, 8, mesh, (2, 2), TPUV4)
        direct = retune_degraded(GPT3_175B, 8, mesh, (2, 2), TPUV4)
        assert cached.mesh == direct.mesh
        assert cached.block_seconds == direct.block_seconds


class TestPolicies:
    RELIABILITY = ClusterReliability(
        chip_mtbf=2000.0 * 3600, chips=64, repair_seconds=3600.0
    )

    def test_reliability_validation(self):
        with pytest.raises(ValueError):
            ClusterReliability(chip_mtbf=0.0, chips=4)
        with pytest.raises(ValueError):
            ClusterReliability(chip_mtbf=1.0, chips=0)
        with pytest.raises(ValueError):
            ClusterReliability(chip_mtbf=1.0, chips=4, repair_seconds=-1.0)

    def test_availability(self):
        rel = self.RELIABILITY
        assert rel.mtbf == pytest.approx(2000.0 * 3600 / 64)
        assert 0.0 < rel.availability < 1.0

    def test_restart_goodput_decomposition(self):
        est = restart_goodput(0.5, self.RELIABILITY, 60.0, 180.0)
        assert est.policy == "restart"
        assert est.goodput == pytest.approx(
            self.RELIABILITY.availability * est.checkpoint_goodput
        )
        assert 0.0 < est.goodput < 1.0
        assert est.effective_step_seconds > 0.5
        assert est.steps_per_hour == pytest.approx(
            3600.0 / est.effective_step_seconds
        )

    def test_degrade_beats_restart_when_degradation_is_mild(self):
        restart = restart_goodput(0.5, self.RELIABILITY, 60.0, 180.0)
        degrade = degrade_goodput(0.5, 0.6, self.RELIABILITY, 60.0, 180.0)
        assert degrade.policy == "degrade"
        assert degrade.goodput > restart.goodput

    def test_total_loss_degradation_cannot_beat_restart(self):
        """A uselessly slow degraded mesh converges to restart's idle
        repair window (minus the extra failover restarts)."""
        restart = restart_goodput(0.5, self.RELIABILITY, 60.0, 180.0)
        degrade = degrade_goodput(0.5, 1e9, self.RELIABILITY, 60.0, 180.0)
        assert degrade.goodput <= restart.goodput + 1e-9

    def test_degrade_rejects_speedup(self):
        with pytest.raises(ValueError):
            degrade_goodput(0.5, 0.4, self.RELIABILITY, 60.0)

    def test_policy_gap_widens_with_scale(self):
        gaps = []
        for chips in (16, 64, 256):
            rel = ClusterReliability(
                chip_mtbf=2000.0 * 3600, chips=chips, repair_seconds=3600.0
            )
            restart = restart_goodput(0.5, rel, 60.0, 180.0)
            degrade = degrade_goodput(0.5, 0.65, rel, 60.0, 180.0)
            gaps.append(degrade.goodput - restart.goodput)
        assert gaps == sorted(gaps)


class TestRetryPolicyMachine:
    def test_episode_deterministic(self):
        import random

        policy = RetryPolicy()
        a = policy.episode(random.Random(5), 1e-3, 0.5)
        b = policy.episode(random.Random(5), 1e-3, 0.5)
        assert a == b

    def test_zero_budget_is_immediately_fatal(self):
        import random

        policy = RetryPolicy(max_retries=0)
        episode = policy.episode(random.Random(1), 1e-3, 0.5)
        assert episode.exhausted
        assert episode.attempts == 0
        assert episode.delay_seconds == 0.0
