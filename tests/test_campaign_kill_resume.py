"""The campaign crash-tolerance contract, pinned end to end.

A sweep SIGKILLed mid-flight, then resumed (at any ``--jobs``), must
leave a record store byte-identical to one written by an uninterrupted
serial run — across ``PYTHONHASHSEED`` values. These tests kill real
subprocess sweeps and diff the raw store bytes.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

CAMPAIGN = "kill-test"

#: A campaign of real simulations: argv = (root, jobs, n_points).
SWEEP_SCRIPT = """
import sys
from repro.campaign import CampaignRunner, CampaignStore


def point(n):
    from repro import TPUV4, get_algorithm, simulate
    from repro.algorithms import GeMMConfig
    from repro.core import Dataflow, GeMMShape
    from repro.mesh import Mesh2D

    cfg = GeMMConfig(
        GeMMShape(512 * (1 + n % 3), 512, 512),
        Mesh2D(2, 2),
        Dataflow.OS,
        slices=1,
    )
    program = get_algorithm("meshslice").build_program(cfg, TPUV4)
    return simulate(program, TPUV4).makespan


root, jobs, n = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
summary = CampaignRunner(
    CampaignStore(root), "kill-test", point, jobs=jobs
).run(list(range(n)))
sys.stdout.write(
    f"complete={summary.complete} ran={summary.ran} "
    f"skipped={summary.skipped} failed={summary.failed} "
    f"quarantined={summary.quarantined}\\n"
)
"""

N_POINTS = 10
KILL_AFTER_RECORDS = 3


def _env(hashseed):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hashseed
    env.pop("REPRO_NO_METRICS", None)
    env.pop("REPRO_JOBS", None)
    return env


def _sweep(root, jobs, hashseed):
    """Run one sweep subprocess to completion; return its stdout."""
    proc = subprocess.run(
        [sys.executable, "-c", SWEEP_SCRIPT, str(root), str(jobs),
         str(N_POINTS)],
        capture_output=True,
        env=_env(hashseed),
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout.decode()


def _record_count(store_file):
    try:
        with open(store_file, "rb") as handle:
            return handle.read().count(b"\n")
    except OSError:
        return 0


def _kill_mid_sweep(root, jobs, hashseed):
    """Start a sweep, SIGKILL it once records are landing."""
    store_file = os.path.join(root, f"{CAMPAIGN}.jsonl")
    proc = subprocess.Popen(
        [sys.executable, "-c", SWEEP_SCRIPT, str(root), str(jobs),
         str(N_POINTS)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=_env(hashseed),
    )
    deadline = time.monotonic() + 600
    try:
        while proc.poll() is None and time.monotonic() < deadline:
            if _record_count(store_file) >= KILL_AFTER_RECORDS:
                proc.send_signal(signal.SIGKILL)
                break
            time.sleep(0.01)
        proc.wait(timeout=600)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    # Either the kill landed mid-sweep (the interesting case) or the
    # sweep won the race and finished; both must resume cleanly.
    count = _record_count(store_file)
    assert count > 0, "sweep was killed before any record landed"
    return count


def _store_bytes(root):
    with open(os.path.join(root, f"{CAMPAIGN}.jsonl"), "rb") as handle:
        return handle.read()


class TestKillResumeDeterminism:
    def _check(self, tmp_path, jobs):
        killed_root = str(tmp_path / "killed")
        os.makedirs(killed_root)
        _kill_mid_sweep(killed_root, jobs, hashseed="0")
        out = _sweep(killed_root, jobs, hashseed="17")
        assert "complete=True" in out and "failed=0" in out
        cold_root = str(tmp_path / "cold")
        cold_out = _sweep(cold_root, 1, hashseed="31337")
        assert f"complete=True ran={N_POINTS} skipped=0" in cold_out
        assert _store_bytes(killed_root) == _store_bytes(cold_root)

    def test_serial_sweep_killed_and_resumed(self, tmp_path):
        self._check(tmp_path, jobs=1)

    def test_parallel_sweep_killed_and_resumed(self, tmp_path):
        """Satellite: kill a 4-way pool mid-flight, resume 4-way."""
        self._check(tmp_path, jobs=4)


class TestResumeSkipsWork:
    def test_completed_sweep_resumes_as_noop(self, tmp_path):
        root = str(tmp_path / "store")
        first = _sweep(root, 1, hashseed="0")
        assert f"complete=True ran={N_POINTS} skipped=0" in first
        before = _store_bytes(root)
        second = _sweep(root, 1, hashseed="99")
        assert f"complete=True ran=0 skipped={N_POINTS}" in second
        assert _store_bytes(root) == before
