"""Tests for the Chrome/Perfetto trace export."""

import json

from repro.hw import TPUV4
from repro.sim import LINK_H, ProgramBuilder, Trace


def _spans():
    builder = ProgramBuilder(TPUV4)
    ag = builder.allgather("ag", 4, 10e6, LINK_H)
    builder.gemm("gemm", 512, 512, 512, deps=[ag])
    return builder.build().run()


def _to_chrome(spans):
    return Trace.from_spans(spans).to_chrome()


class TestChromeTrace:
    def test_complete_events_for_every_span(self):
        spans = _spans()
        events = _to_chrome(spans)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(spans)

    def test_track_metadata_emitted(self):
        events = _to_chrome(_spans())
        names = [
            e["args"]["name"] for e in events if e["ph"] == "M"
        ]
        assert "core" in names
        assert LINK_H in names

    def test_times_in_microseconds(self):
        spans = _spans()
        events = [e for e in _to_chrome(spans) if e["ph"] == "X"]
        gemm = next(e for e in events if e["name"] == "gemm")
        gemm_span = next(s for s in spans if s.label == "gemm")
        assert gemm["ts"] == gemm_span.start * 1e6
        assert gemm["dur"] == gemm_span.duration * 1e6

    def test_args_only_scalars(self):
        for event in _to_chrome(_spans()):
            for value in event.get("args", {}).values():
                assert isinstance(value, (int, float, str, bool))

    def test_counter_tracks_present(self):
        events = _to_chrome(_spans())
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        assert {e["name"] for e in counters} >= {"busy:core", f"busy:{LINK_H}"}
        for event in counters:
            assert isinstance(event["args"]["busy"], int)
            assert event["args"]["busy"] >= 0

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        Trace.from_spans(_spans()).write_chrome(str(path))
        events = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "C" for e in events)

    def test_empty_spans(self):
        assert _to_chrome([]) == []
