"""Tests for the seeded lifetime simulator (repro.recovery.lifetime)."""

import json

import pytest

from repro.mesh import Mesh2D
from repro.recovery import (
    ClusterReliability,
    LifetimeSpec,
    POLICIES,
    TableElasticPlanner,
    degrade_goodput,
    replace_goodput,
    restart_goodput,
    simulate_lifetime,
)

#: A long-horizon, large-MTBF regime where the renewal process has
#: many cycles and the closed forms' single-failure-per-cycle
#: assumption holds almost surely.
CONVERGENCE = ClusterReliability(
    chip_mtbf=500_000.0 * 16, chips=16, repair_seconds=600.0
)
CKPT = 60.0
RESTART = 30.0


def planner(migration: float = 0.0) -> TableElasticPlanner:
    full = Mesh2D(4, 4)
    return TableElasticPlanner(
        full,
        step_seconds=1.0,
        degraded={1: (Mesh2D(3, 4), 1.5), 2: (Mesh2D(3, 3), 2.0)},
        reshaped={15: (Mesh2D(3, 5), 1.4), 14: (Mesh2D(2, 7), 1.9)},
        migration_seconds=migration,
    )


class TestClosedFormConvergence:
    """The tentpole acceptance criterion: at large MTBF with zero
    spares the simulated goodput converges to the closed forms."""

    def test_restart_converges(self):
        result = simulate_lifetime(
            planner(),
            CONVERGENCE,
            LifetimeSpec(policy="restart", duration_days=2000.0, seed=7),
            CKPT,
            RESTART,
        )
        closed = restart_goodput(1.0, CONVERGENCE, CKPT, RESTART).goodput
        assert result.goodput == pytest.approx(closed, abs=5e-3)

    def test_degrade_converges(self):
        result = simulate_lifetime(
            planner(),
            CONVERGENCE,
            LifetimeSpec(policy="degrade", duration_days=2000.0, seed=7),
            CKPT,
            RESTART,
        )
        closed = degrade_goodput(1.0, 1.5, CONVERGENCE, CKPT, RESTART).goodput
        assert result.goodput == pytest.approx(closed, abs=5e-3)

    def test_replace_with_deep_pool_converges(self):
        """An effectively infinite pool reproduces the replace closed
        form (which assumes the spare shop never runs dry)."""
        result = simulate_lifetime(
            planner(),
            CONVERGENCE,
            LifetimeSpec(
                policy="replace", duration_days=2000.0, spares=10_000, seed=7
            ),
            CKPT,
            RESTART,
        )
        closed = replace_goodput(1.0, CONVERGENCE, CKPT, RESTART, 0.0).goodput
        assert result.goodput == pytest.approx(closed, abs=5e-3)


class TestPolicyDynamics:
    #: Flaky fleet: failures arrive hourly, repairs take a day.
    FLAKY = ClusterReliability(
        chip_mtbf=3600.0 * 16, chips=16, repair_seconds=86400.0
    )

    def _run(self, policy: str, spares: int = 0) -> "LifetimeResult":
        return simulate_lifetime(
            planner(migration=5.0),
            self.FLAKY,
            LifetimeSpec(
                policy=policy, duration_days=3.0, spares=spares, seed=3
            ),
            CKPT,
            RESTART,
        )

    def test_degrade_chains_through_multiple_failures(self):
        result = self._run("degrade")
        meshes = {e.mesh for e in result.events if e.mesh}
        assert "3x4" in meshes  # one outstanding failure
        assert result.min_running < 16

    def test_degrade_idles_past_the_table(self):
        """Three outstanding failures exceed the planner's table, so
        the cluster idles instead of crashing."""
        result = self._run("degrade")
        idle = [e for e in result.events if e.action == "idle"]
        assert idle  # day-long repairs stack 3+ holes within hours
        assert all(e.mesh is None and e.rate == 0.0 for e in idle)
        assert result.idle_seconds > 0.0

    def test_replace_consumes_and_refills_spares(self):
        result = self._run("replace", spares=2)
        assert result.spares_consumed >= 1
        assert result.min_running == 16 or result.exhaustions > 0

    def test_replace_exhaustion_idles_until_repair(self):
        result = self._run("replace", spares=0)
        assert result.exhaustions == result.failures
        assert result.idle_seconds > 0.0
        kinds = [e.kind for e in result.events]
        assert "spare-exhausted" in kinds

    def test_spares_strictly_help(self):
        assert self._run("replace", spares=4).goodput > self._run(
            "replace", spares=0
        ).goodput

    def test_restart_idles_through_repairs(self):
        result = self._run("restart")
        assert result.idle_seconds > 0.0
        assert result.min_running == 16  # never trains shrunk

    def test_reshape_keeps_more_chips_than_degrade(self):
        reshape = self._run("reshape")
        degrade = self._run("degrade")
        # 4x4 -> 3x5 keeps 15 chips where degrade drains a line to 12.
        assert reshape.min_running >= degrade.min_running

    def test_goodput_is_banked_over_wall(self):
        result = self._run("degrade")
        assert result.goodput == pytest.approx(
            result.banked_seconds / result.wall_seconds
        )
        assert 0.0 <= result.goodput <= 1.0


class TestDeterminismAndLog:
    def test_same_seed_is_byte_identical(self):
        runs = [
            simulate_lifetime(
                planner(migration=5.0),
                TestPolicyDynamics.FLAKY,
                LifetimeSpec(policy="degrade", duration_days=3.0, seed=11),
                CKPT,
                RESTART,
            )
            for _ in range(2)
        ]
        assert runs[0].event_log_jsonl() == runs[1].event_log_jsonl()
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self):
        results = {
            simulate_lifetime(
                planner(),
                TestPolicyDynamics.FLAKY,
                LifetimeSpec(policy="restart", duration_days=3.0, seed=s),
                CKPT,
                RESTART,
            ).goodput
            for s in range(8)
        }
        assert len(results) > 1

    def test_event_log_is_canonical_jsonl(self):
        result = simulate_lifetime(
            planner(),
            TestPolicyDynamics.FLAKY,
            LifetimeSpec(policy="replace", duration_days=2.0, spares=1, seed=5),
            CKPT,
            RESTART,
        )
        lines = result.event_log_jsonl().splitlines()
        assert lines  # begins with the initial transition event
        for line in lines:
            event = json.loads(line)
            assert json.dumps(
                event, sort_keys=True, separators=(",", ":")
            ) == line
        seqs = [json.loads(line)["seq"] for line in lines]
        assert seqs == list(range(len(lines)))
        assert json.loads(lines[-1])["kind"] == "end"

    def test_trajectory_starts_at_full_rate(self):
        result = simulate_lifetime(
            planner(),
            TestPolicyDynamics.FLAKY,
            LifetimeSpec(policy="degrade", duration_days=3.0, seed=3),
            CKPT,
            RESTART,
        )
        t0, rate0 = result.trajectory[0]
        assert t0 == 0.0
        assert 0.0 < rate0 <= 1.0


class TestValidation:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LifetimeSpec(policy="panic", duration_days=1.0)
        with pytest.raises(ValueError):
            LifetimeSpec(policy="restart", duration_days=0.0)
        with pytest.raises(ValueError):
            LifetimeSpec(policy="restart", duration_days=1.0, spares=-1)

    def test_policies_tuple(self):
        assert POLICIES == ("restart", "degrade", "replace", "reshape")

    def test_chip_count_mismatch_rejected(self):
        bad = ClusterReliability(chip_mtbf=3600.0, chips=9)
        with pytest.raises(ValueError, match="does not match"):
            simulate_lifetime(
                planner(),
                bad,
                LifetimeSpec(policy="restart", duration_days=1.0),
                CKPT,
            )

    def test_table_planner_validation(self):
        with pytest.raises(ValueError):
            TableElasticPlanner(Mesh2D(4, 4), step_seconds=0.0)
        with pytest.raises(ValueError):
            TableElasticPlanner(
                Mesh2D(4, 4), step_seconds=1.0, migration_seconds=-1.0
            )
