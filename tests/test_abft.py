"""Tests for ABFT checksums: encode, verify, correct, and timed overhead."""

import dataclasses

import numpy as np
import pytest

from repro.abft import (
    abft_gemm,
    augment_a,
    augment_b,
    augmented_product,
    residuals,
    strip,
    verify_block,
)
from repro.algorithms import get_algorithm
from repro.algorithms.base import (
    GeMMConfig,
    abft_payload_factor,
    abft_protected_ops,
)
from repro.core import Dataflow, GeMMShape
from repro.faults import SDCPlan
from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.sim.chip import checksum_cost
from repro.sim.engine import makespan

ALGORITHMS = ("meshslice", "summa", "collective")


def _ints(rng, shape):
    return rng.integers(-4, 5, shape).astype(np.float64)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestChecksums:
    def test_augment_shapes(self, rng):
        a = _ints(rng, (4, 6))
        b = _ints(rng, (6, 5))
        assert augment_a(a).shape == (5, 6)
        assert augment_b(b).shape == (6, 6)
        assert np.array_equal(augment_a(a)[-1, :], a.sum(axis=0))
        assert np.array_equal(augment_b(b)[:, -1], b.sum(axis=1))

    def test_augment_rejects_non_2d(self):
        with pytest.raises(ValueError):
            augment_a(np.zeros(3))
        with pytest.raises(ValueError):
            augment_b(np.zeros((2, 2, 2)))

    def test_product_carries_checksums(self, rng):
        a = _ints(rng, (4, 6))
        b = _ints(rng, (6, 5))
        c_aug = augment_a(a) @ augment_b(b)
        assert np.array_equal(c_aug, augmented_product(a @ b))
        row_res, col_res, corner_res = residuals(c_aug)
        assert not row_res.any() and not col_res.any() and corner_res == 0.0

    def test_strip_roundtrip(self, rng):
        c = _ints(rng, (3, 4))
        assert np.array_equal(strip(augmented_product(c)), c)


class TestVerifyBlock:
    def _clean_block(self, rng, shape=(4, 5)):
        return augmented_product(_ints(rng, shape))

    def test_clean(self, rng):
        verdict = verify_block(self._clean_block(rng))
        assert verdict.status == "clean"

    def test_single_data_flip_corrected(self, rng):
        c_aug = self._clean_block(rng)
        truth = c_aug.copy()
        c_aug[1, 2] += 8.0
        verdict = verify_block(c_aug)
        assert verdict.status == "corrected"
        assert verdict.location == (1, 2)
        assert np.array_equal(c_aug, truth)

    def test_nan_flip_reconstructed(self, rng):
        c_aug = self._clean_block(rng)
        truth = c_aug.copy()
        c_aug[0, 0] = np.nan
        verdict = verify_block(c_aug)
        assert verdict.status == "corrected"
        assert np.array_equal(c_aug, truth)

    def test_checksum_entry_repaired(self, rng):
        c_aug = self._clean_block(rng)
        truth = c_aug.copy()
        c_aug[2, -1] += 16.0  # checksum column entry
        verdict = verify_block(c_aug)
        assert verdict.status == "checksum_repaired"
        assert np.array_equal(c_aug, truth)
        c_aug[-1, 1] += 4.0  # checksum row entry
        assert verify_block(c_aug).status == "checksum_repaired"
        assert np.array_equal(c_aug, truth)

    def test_corner_repaired(self, rng):
        c_aug = self._clean_block(rng)
        truth = c_aug.copy()
        c_aug[-1, -1] += 2.0
        assert verify_block(c_aug).status == "checksum_repaired"
        assert np.array_equal(c_aug, truth)

    def test_dirty_corner_gates_checksum_repair(self, rng):
        # One bad column + clean rows + dirty corner means the *data*
        # is corrupted consistently with its row checksums (an operand
        # flip), not the checksum row: repairing the checksum would
        # certify a wrong block. Must be uncorrectable instead.
        a = _ints(rng, (4, 6))
        b = _ints(rng, (6, 5))
        b[3, :] = 0.0
        b[3, 2] = 1.0  # A's column 3 maps into C column 2 only
        a_aug = augment_a(a)
        a_aug[1, 3] += 32.0  # post-encode operand flip (e.g. in an AG)
        c_aug = a_aug @ augment_b(b)
        verdict = verify_block(c_aug)
        assert verdict.bad_cols == (2,)
        assert not verdict.bad_rows
        assert verdict.corner_bad
        assert verdict.status == "uncorrectable"

    def test_multi_error_uncorrectable_and_untouched(self, rng):
        c_aug = self._clean_block(rng)
        snapshot = c_aug.copy()
        c_aug[0, 0] += 1.0
        c_aug[2, 3] += 1.0
        corrupted = c_aug.copy()
        verdict = verify_block(c_aug)
        assert verdict.status == "uncorrectable"
        assert np.array_equal(c_aug, corrupted)  # rolled back, not mangled
        assert not np.array_equal(c_aug, snapshot)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            verify_block(np.zeros((1, 3)))
        with pytest.raises(ValueError):
            verify_block(np.zeros((3, 3)), tol=-1.0)


class TestProtectedGeMM:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_clean_bit_exact(self, rng, algorithm):
        a, b = _ints(rng, (16, 16)), _ints(rng, (16, 16))
        c, report = abft_gemm(
            a, b, Mesh2D(2, 2), algorithm=algorithm, slices=2
        )
        assert np.array_equal(c, a @ b)
        assert report.blocks == 4
        assert report.clean == 4
        assert report.flips == ()

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_single_high_bit_flip_corrected(self, rng, algorithm):
        a, b = _ints(rng, (16, 16)), _ints(rng, (16, 16))
        plan = SDCPlan(rate=1.0, seed=3, bit=48, max_flips=1)
        c, report = abft_gemm(
            a, b, Mesh2D(2, 2), algorithm=algorithm, slices=2, plan=plan
        )
        assert len(report.flips) == 1
        assert np.array_equal(c, a @ b)
        assert report.corrected + report.checksum_repaired + report.recomputed >= 1

    def test_gemm_flip_corrected_in_place(self, rng):
        # Flips confined to the local GeMM hook hit one output block
        # element and must be handled without recomputation.
        a, b = _ints(rng, (16, 16)), _ints(rng, (16, 16))
        plan = SDCPlan(rate=1.0, ops=("gemm",), seed=9, bit=45, max_flips=1)
        c, report = abft_gemm(a, b, Mesh2D(2, 2), slices=2, plan=plan)
        assert np.array_equal(c, a @ b)
        assert report.recomputed == 0
        assert report.corrected + report.checksum_repaired == 1

    def test_multi_flip_recomputed(self, rng):
        a, b = _ints(rng, (16, 16)), _ints(rng, (16, 16))
        plan = SDCPlan(rate=1.0, seed=4, bit=50)
        c, report = abft_gemm(a, b, Mesh2D(2, 2), slices=2, plan=plan)
        assert len(report.flips) > 1
        assert np.array_equal(c, a @ b)
        assert report.recomputed >= 1

    def test_unknown_algorithm_rejected(self, rng):
        a, b = _ints(rng, (8, 8)), _ints(rng, (8, 8))
        with pytest.raises(ValueError, match="algorithm"):
            abft_gemm(a, b, Mesh2D(2, 2), algorithm="cannon")

    def test_report_count(self, rng):
        a, b = _ints(rng, (8, 8)), _ints(rng, (8, 8))
        _, report = abft_gemm(a, b, Mesh2D(2, 2))
        assert report.count("clean") == report.clean == 4
        assert report.count("uncorrectable") == 0

    def test_metrics_counters(self, rng):
        from repro.obs.registry import registry

        a, b = _ints(rng, (8, 8)), _ints(rng, (8, 8))
        before = registry().counter_value("abft.blocks_verified")
        abft_gemm(a, b, Mesh2D(2, 2))
        assert registry().counter_value("abft.blocks_verified") == before + 4


class TestConfigKnobs:
    def test_defaults_off(self):
        cfg = GeMMConfig(
            GeMMShape(64, 64, 64), Mesh2D(2, 2), Dataflow.OS, slices=1
        )
        assert cfg.abft is False
        assert cfg.sdc_rate == 0.0

    def test_sdc_rate_validated(self):
        with pytest.raises(ValueError):
            GeMMConfig(
                GeMMShape(64, 64, 64), Mesh2D(2, 2), Dataflow.OS,
                slices=1, sdc_rate=1.5,
            )

    def test_hash_distinguishes_abft(self):
        cfg = GeMMConfig(
            GeMMShape(64, 64, 64), Mesh2D(2, 2), Dataflow.OS, slices=1
        )
        protected = dataclasses.replace(cfg, abft=True, sdc_rate=0.01)
        assert cfg != protected
        assert hash(cfg) != hash(protected)

    def test_payload_factor(self):
        cfg = GeMMConfig(
            GeMMShape(64, 128, 256), Mesh2D(2, 2), Dataflow.OS,
            slices=1, abft=True,
        )
        m_loc, n_loc = 64 // 2, 128 // 2
        assert abft_payload_factor(cfg, "a") == pytest.approx(1 + 1 / m_loc)
        assert abft_payload_factor(cfg, "b") == pytest.approx(1 + 1 / n_loc)
        assert abft_payload_factor(cfg, "c") == pytest.approx(
            (1 + 1 / m_loc) * (1 + 1 / n_loc)
        )
        off = dataclasses.replace(cfg, abft=False)
        assert abft_payload_factor(off, "a") == 1.0

    def test_protected_ops_scale_with_slices(self):
        cfg = GeMMConfig(
            GeMMShape(64, 64, 64), Mesh2D(2, 2), Dataflow.OS,
            slices=4, abft=True,
        )
        assert abft_protected_ops(cfg) == 4 * 3  # gemm + two collectives
        one_ring = dataclasses.replace(cfg, mesh=Mesh2D(4, 1), slices=1)
        assert abft_protected_ops(one_ring) == 2


class TestTimedOverhead:
    def _cfg(self, algorithm, **kw):
        slices = 1 if algorithm == "collective" else 4
        return GeMMConfig(
            GeMMShape(1024, 1024, 1024), Mesh2D(2, 2), Dataflow.OS,
            slices=slices, **kw,
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_abft_program_slower_with_abft_activities(self, algorithm):
        algo = get_algorithm(algorithm)
        base_prog = algo.build_program(self._cfg(algorithm), TPUV4)
        prot_prog = algo.build_program(
            self._cfg(algorithm, abft=True, sdc_rate=1e-3), TPUV4
        )
        base_labels = {a.label for a in base_prog.activities}
        prot_labels = {a.label for a in prot_prog.activities}
        assert not any(lbl.startswith("abft") for lbl in base_labels)
        assert {"abft_encode_a", "abft_encode_b", "abft_verify_c",
                "abft_recompute"} <= prot_labels
        assert makespan(prot_prog.run()) > makespan(base_prog.run())

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_abft_off_program_unchanged(self, algorithm):
        """abft=False builds the exact pre-ABFT program structure."""
        algo = get_algorithm(algorithm)
        cfg = self._cfg(algorithm)
        first = algo.build_program(cfg, TPUV4)
        second = algo.build_program(dataclasses.replace(cfg), TPUV4)
        assert [
            (a.label, a.duration, tuple(a.deps)) for a in first.activities
        ] == [
            (a.label, a.duration, tuple(a.deps)) for a in second.activities
        ]

    def test_recompute_scales_with_rate(self):
        algo = get_algorithm("meshslice")
        low = algo.build_program(
            self._cfg("meshslice", abft=True, sdc_rate=1e-4), TPUV4
        )
        high = algo.build_program(
            self._cfg("meshslice", abft=True, sdc_rate=0.5), TPUV4
        )

        def recompute_seconds(prog):
            return sum(
                a.duration for a in prog.activities
                if a.label == "abft_recompute"
            )

        assert recompute_seconds(high) > recompute_seconds(low)

    def test_checksum_cost_memory_bound(self):
        cost = checksum_cost(1e6, TPUV4)
        assert cost.flops == 0.0
        assert cost.hbm_bytes == 1e6 * TPUV4.dtype_bytes
        assert cost.seconds == pytest.approx(
            TPUV4.t_kernel + cost.hbm_bytes / TPUV4.hbm_bandwidth
        )
        with pytest.raises(ValueError):
            checksum_cost(-1.0, TPUV4)


class TestTunerIntegration:
    def test_estimate_includes_protection(self):
        from repro.autotuner.costmodel import meshslice_estimate

        cfg = GeMMConfig(
            GeMMShape(4096, 4096, 4096), Mesh2D(4, 4), Dataflow.OS, slices=4
        )
        base = meshslice_estimate(cfg, TPUV4)
        prot = meshslice_estimate(
            dataclasses.replace(cfg, abft=True, sdc_rate=1e-3), TPUV4
        )
        assert prot.total > base.total

    def test_collective_estimate_includes_protection(self):
        from repro.autotuner.costmodel import collective_estimate

        cfg = GeMMConfig(
            GeMMShape(4096, 4096, 4096), Mesh2D(4, 4), Dataflow.OS, slices=1
        )
        base = collective_estimate(cfg, TPUV4)
        prot = collective_estimate(
            dataclasses.replace(cfg, abft=True, sdc_rate=1e-3), TPUV4
        )
        assert prot.total > base.total

    def test_best_slice_count_keeps_knobs(self):
        from repro.autotuner.costmodel import best_slice_count

        cfg = GeMMConfig(
            GeMMShape(4096, 4096, 4096), Mesh2D(4, 4), Dataflow.OS,
            slices=1, abft=True, sdc_rate=1e-3,
        )
        s, estimate = best_slice_count(cfg, TPUV4)
        protected = meshslice_total = estimate.total
        nominal = best_slice_count(
            dataclasses.replace(cfg, abft=False, sdc_rate=0.0), TPUV4
        )[1].total
        assert s >= 1
        assert protected == meshslice_total > nominal

    def test_tune_passes_knobs_through(self):
        from repro.autotuner import tune
        from repro.models import GPT3_175B

        result = tune(
            GPT3_175B, batch_size=8, chips=16, hw=TPUV4,
            abft=True, sdc_rate=1e-3,
        )
        for tuned in result.passes:
            cfg = tuned.config(result.mesh)
            assert cfg.abft and cfg.sdc_rate == 1e-3
