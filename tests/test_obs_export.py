"""Unit tests of the metrics exporters and the JSONL schema."""

import json

import pytest

from repro.obs.export import (
    cache_records,
    collect_records,
    dumps_records,
    read_jsonl,
    summary_table,
    validate_record,
    write_jsonl,
)
from repro.obs.registry import GLOBAL_REGISTRY


@pytest.fixture(autouse=True)
def clean_registry():
    GLOBAL_REGISTRY.clear()
    yield
    GLOBAL_REGISTRY.clear()


def _counter(name="c", value=1.0, labels=None):
    return {
        "type": "counter",
        "name": name,
        "labels": labels or {},
        "value": value,
    }


class TestValidateRecord:
    def test_accepts_counter(self):
        validate_record(_counter())

    def test_accepts_histogram(self):
        validate_record(
            {
                "type": "histogram",
                "name": "h",
                "labels": {},
                "count": 2,
                "total": 1.5,
                "buckets": {"1.0": 2},
            }
        )

    @pytest.mark.parametrize("missing", ["type", "name", "labels"])
    def test_rejects_missing_required_key(self, missing):
        record = _counter()
        del record[missing]
        with pytest.raises(ValueError, match="missing"):
            validate_record(record)

    def test_rejects_unknown_type(self):
        record = _counter()
        record["type"] = "timer"
        with pytest.raises(ValueError, match="unknown"):
            validate_record(record)

    def test_rejects_non_string_labels(self):
        record = _counter(labels={"k": 1})
        with pytest.raises(ValueError, match="labels"):
            validate_record(record)

    def test_rejects_extra_keys(self):
        record = _counter()
        record["count"] = 3
        with pytest.raises(ValueError, match="unexpected"):
            validate_record(record)

    def test_rejects_missing_value(self):
        record = _counter()
        del record["value"]
        with pytest.raises(ValueError, match="numeric value"):
            validate_record(record)

    def test_rejects_non_int_histogram_buckets(self):
        with pytest.raises(ValueError, match="buckets"):
            validate_record(
                {
                    "type": "histogram",
                    "name": "h",
                    "labels": {},
                    "count": 1,
                    "total": 1.0,
                    "buckets": {"1.0": 1.5},
                }
            )


class TestCollectAndDump:
    def test_registry_records_validate(self):
        GLOBAL_REGISTRY.inc("sim.runs", 2.0)
        GLOBAL_REGISTRY.observe("engine.queue_wait_seconds", 1e-4)
        records = collect_records(include_caches=False)
        assert records
        for record in records:
            validate_record(record)

    def test_sorted_output(self):
        GLOBAL_REGISTRY.inc("z.last")
        GLOBAL_REGISTRY.inc("a.first")
        records = collect_records(include_caches=False)
        keys = [(r["type"], r["name"]) for r in records]
        assert keys == sorted(keys)

    def test_run_metrics_included(self):
        from repro.obs.derive import derive_run_metrics

        metrics = derive_run_metrics([])
        records = collect_records(
            run_metrics=[metrics], include_caches=False
        )
        assert any(r["name"] == "run.makespan_seconds" for r in records)
        assert all(r["type"] == "derived" for r in records)

    def test_cache_records_validate(self):
        for record in cache_records():
            validate_record(record)
            assert record["name"].startswith("cache.")

    def test_dumps_one_sorted_line_per_record(self):
        text = dumps_records([_counter("b"), _counter("a")])
        lines = text.splitlines()
        assert len(lines) == 2
        for line in lines:
            parsed = json.loads(line)
            assert list(parsed) == sorted(parsed)
        assert text.endswith("\n")

    def test_file_roundtrip(self, tmp_path):
        records = [_counter("a"), _counter("b", 2.0, {"k": "v"})]
        path = tmp_path / "m.jsonl"
        write_jsonl(records, str(path))
        assert read_jsonl(str(path)) == records

    def test_read_rejects_invalid_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "timer", "name": "x", "labels": {}}\n')
        with pytest.raises(ValueError):
            read_jsonl(str(path))

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text("\n" + dumps_records([_counter()]) + "\n")
        assert read_jsonl(str(path)) == [_counter()]


class TestSummaryTable:
    def test_renders_all_types(self):
        GLOBAL_REGISTRY.inc("sim.runs", 3.0, labels={"kind": "x"})
        GLOBAL_REGISTRY.set_gauge("level", 0.5)
        GLOBAL_REGISTRY.observe("h", 2.0)
        GLOBAL_REGISTRY.observe("h", 4.0)
        table = summary_table(collect_records(include_caches=False))
        assert "sim.runs" in table
        assert "kind=x" in table
        assert "n=2" in table and "mean=3" in table

    def test_empty_records(self):
        table = summary_table([])
        assert "name" in table
