"""Property-based ABFT suite: random shapes, meshes, and flips.

Two end-to-end properties over the protected functional GeMMs:

* ABFT *off* (no plan): the checksummed execution strips back to the
  bit-exact ``A @ B`` of the unprotected plane — the encode/verify
  machinery never perturbs a clean run; and
* ABFT *on* with one injected flip: the corrected result is bit-exact
  ``A @ B`` again. Flip positions are restricted to bit >= 32, the
  guaranteed-detectable regime for *normal* values — flips in the
  lowest mantissa bits can fall below float64 summation rounding and
  escape any sum-based checksum (the documented detection floor; the
  ablation quantifies the empirical escape rate over the full range).
  One carve-out survives even at high bits: flipping a 0.0 element
  yields a tiny denormal-range value — a mantissa flip gives a
  subnormal (<= ~2e-308); an exponent-bit flip at bit b in 52..61
  gives 2**(2**(b-52) - 1022), at most 2**-510 ~= 3e-154 for bit 61 —
  that may be absorbed by, or hide below, every residual sum. The
  properties allow exactly that case and bound its magnitude.

Marked ``abft`` so CI runs these in their own leg.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.abft import abft_gemm
from repro.faults import SDCPlan
from repro.mesh import Mesh2D

pytestmark = pytest.mark.abft

ALGORITHMS = ("meshslice", "summa", "collective")

#: Lowest bit position the single-flip property may force: bits below
#: the detection floor can be absorbed by float64 summation rounding.
MIN_DETECTABLE_BIT = 32

meshes = st.sampled_from([(1, 1), (1, 2), (2, 1), (2, 2), (2, 3), (3, 2)])
algorithms = st.sampled_from(ALGORITHMS)


def _operands(seed, mesh, min_local=2):
    """Random integer-valued float64 operands divisible by the mesh."""
    rng = np.random.default_rng(seed)
    rows, cols = mesh
    lcm = int(np.lcm(rows, cols))
    m = rows * int(rng.integers(min_local, 5))
    n = cols * int(rng.integers(min_local, 5))
    # K must divide by both ring sizes (and SUMMA's lcm iteration count).
    k = lcm * rows * cols * int(rng.integers(1, 3))
    a = rng.integers(-4, 5, (m, k)).astype(np.float64)
    b = rng.integers(-4, 5, (k, n)).astype(np.float64)
    return a, b


class TestProtectionProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        mesh=meshes,
        algorithm=algorithms,
    )
    def test_abft_off_bit_exact(self, seed, mesh, algorithm):
        a, b = _operands(seed, mesh)
        c, report = abft_gemm(a, b, Mesh2D(*mesh), algorithm=algorithm)
        assert np.array_equal(c, a @ b)
        assert report.clean == report.blocks
        assert report.flips == ()

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        mesh=meshes,
        algorithm=algorithms,
        bit=st.integers(MIN_DETECTABLE_BIT, 62),
    )
    def test_single_flip_corrected_bit_exact(self, seed, mesh, algorithm, bit):
        a, b = _operands(seed, mesh)
        plan = SDCPlan(rate=1.0, seed=seed, bit=bit, max_flips=1)
        with np.errstate(invalid="ignore", over="ignore"):
            c, report = abft_gemm(
                a, b, Mesh2D(*mesh), algorithm=algorithm, plan=plan
            )
        assert len(report.flips) <= 1
        truth = a @ b
        if np.array_equal(c, truth):
            # Protection held: either a repair ran, or the flip was
            # inert (it hit a 0.0 element, or an operand element whose
            # matching row/column of the other operand is all zeros).
            # Asserting repair counts here would mean re-deriving the
            # flip's downstream effect — exactly the checksums' job.
            return
        # The one escape hatch: a flip landing on a 0.0 element yields
        # a denormal-range value (a mantissa flip gives a subnormal
        # <= ~1.1e-308; an exponent bit up to 61 gives at most
        # 2**-510), whose downstream products hide below every
        # integer-scale residual sum. The escape is that value times
        # one integer operand entry — we assert a loose 1e-150
        # ceiling, astronomically below any tolerance a training run
        # could care about.
        assert report.flips[0].before == 0.0
        assert np.abs(c - truth).max() < 1e-150

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        mesh=st.sampled_from([(2, 2), (2, 3)]),
        bit=st.integers(MIN_DETECTABLE_BIT, 62),
    )
    def test_gemm_only_flips_avoid_recompute(self, seed, mesh, bit):
        """A single flip in a local product is always locatable."""
        a, b = _operands(seed, mesh)
        plan = SDCPlan(
            rate=1.0, ops=("gemm",), seed=seed, bit=bit, max_flips=1
        )
        with np.errstate(invalid="ignore", over="ignore"):
            c, report = abft_gemm(
                a, b, Mesh2D(*mesh), algorithm="meshslice", plan=plan
            )
        truth = a @ b
        if not np.array_equal(c, truth):
            # Same zero-element denormal-range carve-out as above.
            assert report.flips[0].before == 0.0
            assert np.abs(c - truth).max() < 1e-150
        if report.flips:
            assert report.recomputed == 0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), mesh=meshes)
    def test_slicing_preserves_protection(self, seed, mesh):
        """The checksum invariant survives every legal slice count."""
        a, b = _operands(seed, mesh, min_local=2)
        rows, cols = mesh
        k = a.shape[1]
        slice_candidates = [
            s for s in (1, 2, 4)
            if (k // rows) % s == 0 and (k // cols) % s == 0
        ]
        for slices in slice_candidates:
            c, report = abft_gemm(
                a, b, Mesh2D(*mesh), algorithm="meshslice", slices=slices
            )
            assert np.array_equal(c, a @ b)
            assert report.clean == report.blocks
