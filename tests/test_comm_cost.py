"""Tests for the analytical communication cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import ZERO_COST, CommCost, CommCostModel
from repro.hw import HardwareParams


@pytest.fixture
def model():
    hw = HardwareParams(
        link_bandwidth=100e9,
        links_per_direction=1,
        t_sync=1e-6,
        t_launch=10e-6,
    )
    return CommCostModel(hw)


class TestAllGather:
    def test_matches_paper_formula(self, model):
        """cost = t_launch + (P-1) * (t_sync + shard / bw)."""
        cost = model.allgather(ring_size=8, shard_bytes=1e6)
        hw = model.hw
        expected = hw.t_launch + 7 * (hw.t_sync + 1e6 / hw.ring_bandwidth)
        assert cost.total == pytest.approx(expected)

    def test_breakdown_components(self, model):
        cost = model.allgather(4, 2e6)
        assert cost.launch == pytest.approx(model.hw.t_launch)
        assert cost.sync == pytest.approx(3 * model.hw.t_sync)
        assert cost.transfer == pytest.approx(3 * 2e6 / model.hw.ring_bandwidth)
        assert cost.syncs == 3

    def test_single_chip_is_free(self, model):
        assert model.allgather(1, 1e9) == ZERO_COST

    def test_hbm_traffic_is_send_plus_receive(self, model):
        cost = model.allgather(5, 1e6)
        assert cost.hbm_bytes == pytest.approx(2 * 4 * 1e6)

    def test_bidirectional_rings_halve_transfer(self):
        uni = CommCostModel(HardwareParams(links_per_direction=1))
        bi = CommCostModel(HardwareParams(links_per_direction=2))
        assert bi.allgather(4, 1e6).transfer == pytest.approx(
            uni.allgather(4, 1e6).transfer / 2
        )

    @given(ring=st.integers(2, 64), bytes_=st.floats(1.0, 1e9))
    @settings(max_examples=30, deadline=None)
    def test_monotonic_in_ring_size(self, ring, bytes_):
        fresh = CommCostModel(HardwareParams())
        smaller = fresh.allgather(ring, bytes_).total
        larger = fresh.allgather(ring + 1, bytes_).total
        assert larger > smaller


class TestReduceScatter:
    def test_same_wire_time_as_allgather(self, model):
        ag = model.allgather(8, 1e6)
        rds = model.reducescatter(8, 1e6)
        assert rds.total == pytest.approx(ag.total)

    def test_extra_hbm_for_accumulation(self, model):
        ag = model.allgather(8, 1e6)
        rds = model.reducescatter(8, 1e6)
        assert rds.hbm_bytes > ag.hbm_bytes


class TestBroadcast:
    def test_pipeline_stage_count(self, model):
        """P + D - 1 stages, each one sync plus one packet transfer."""
        cost = model.broadcast(ring_size=4, shard_bytes=8e6, packets=8)
        stages = 4 + 8 - 2
        assert cost.syncs == stages
        assert cost.sync == pytest.approx(stages * model.hw.t_sync)
        assert cost.transfer == pytest.approx(
            stages * 1e6 / model.hw.ring_bandwidth
        )

    def test_more_packets_more_syncs_less_bubble_cost(self, model):
        coarse = model.broadcast(8, 8e6, packets=1)
        fine = model.broadcast(8, 8e6, packets=64)
        assert fine.syncs > coarse.syncs
        # Fine packets shrink per-stage transfers (bubbles cost less).
        assert fine.transfer < coarse.transfer

    def test_broadcast_slower_than_allgather_per_byte(self, model):
        """bcast retransmits the whole payload over every link and pays
        bubbles, so moving the same gathered volume costs more."""
        ring = 8
        ag = model.allgather(ring, 1e6)  # gathers 8 MB total
        bcast = model.broadcast(ring, 8e6, packets=ring)
        assert bcast.transfer > ag.transfer

    def test_rejects_bad_packets(self, model):
        with pytest.raises(ValueError):
            model.broadcast(4, 1e6, packets=0)

    def test_reduce_mirrors_broadcast(self, model):
        bcast = model.broadcast(4, 1e6, 4)
        reduce = model.reduce(4, 1e6, 4)
        assert reduce.total == pytest.approx(bcast.total)
        assert reduce.hbm_bytes > bcast.hbm_bytes


class TestSendRecv:
    def test_single_hop(self, model):
        cost = model.sendrecv(1e6)
        hw = model.hw
        assert cost.total == pytest.approx(
            hw.t_launch + hw.t_sync + 1e6 / hw.ring_bandwidth
        )

    def test_multi_hop_scales(self, model):
        one = model.sendrecv(1e6, hops=1)
        three = model.sendrecv(1e6, hops=3)
        assert three.transfer == pytest.approx(3 * one.transfer)
        assert three.syncs == 3

    def test_zero_message_free(self, model):
        assert model.sendrecv(0.0) == ZERO_COST
        assert model.sendrecv(1e6, hops=0) == ZERO_COST

    def test_rejects_negative(self, model):
        with pytest.raises(ValueError):
            model.sendrecv(-1.0)
        with pytest.raises(ValueError):
            model.sendrecv(1.0, hops=-1)


class TestCommCostAlgebra:
    def test_add(self):
        a = CommCost(1.0, 2.0, 3.0, 4.0, 5)
        b = CommCost(10.0, 20.0, 30.0, 40.0, 50)
        total = a + b
        assert total.launch == 11.0
        assert total.transfer == 22.0
        assert total.sync == 33.0
        assert total.hbm_bytes == 44.0
        assert total.syncs == 55

    def test_scaled(self):
        cost = CommCost(1.0, 2.0, 3.0, 4.0, 6).scaled(0.5)
        assert cost.total == pytest.approx(3.0)
        assert cost.syncs == 3

    def test_validation(self):
        model = CommCostModel(HardwareParams())
        with pytest.raises(ValueError):
            model.allgather(0, 1.0)
        with pytest.raises(ValueError):
            model.allgather(4, -1.0)
