"""Tests for the stable top-level ``repro`` API surface."""

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert isinstance(repro.__version__, str)
        assert len(repro.__version__.split(".")) == 3

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_lazy_names_in_dir(self):
        listing = dir(repro)
        for name in ("simulate", "tune", "get_algorithm", "FaultPlan"):
            assert name in listing

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.not_a_real_name

    def test_algorithm_registry(self):
        names = repro.algorithm_names()
        assert "meshslice" in names
        alg = repro.get_algorithm("meshslice")
        assert alg.name == "meshslice"

    def test_lazy_exports_are_canonical_objects(self):
        from repro.algorithms import get_algorithm
        from repro.autotuner import robust_tune, tune
        from repro.faults import NULL_PLAN, FaultPlan, FaultSpec
        from repro.sim.cluster import SimResult, simulate
        from repro.sim.trace import Trace

        assert repro.simulate is simulate
        assert repro.tune is tune
        assert repro.robust_tune is robust_tune
        assert repro.get_algorithm is get_algorithm
        assert repro.FaultPlan is FaultPlan
        assert repro.FaultSpec is FaultSpec
        assert repro.NULL_PLAN is NULL_PLAN
        assert repro.SimResult is SimResult
        assert repro.Trace is Trace

    def test_simulate_end_to_end(self):
        from repro.algorithms import GeMMConfig
        from repro.core import Dataflow, GeMMShape
        from repro.mesh import Mesh2D

        cfg = GeMMConfig(
            GeMMShape(2048, 2048, 2048), Mesh2D(2, 2), Dataflow.OS, slices=2
        )
        program = repro.get_algorithm("meshslice").build_program(
            cfg, repro.TPUV4
        )
        result = repro.simulate(program, repro.TPUV4)
        assert result.makespan > 0
        assert isinstance(result, repro.SimResult)
