"""End-to-end integration tests pinning the paper's headline claims.

Moderate-scale (64-256 chips) cross-module runs: autotuner plans feed
the algorithms, the algorithms feed the simulator, and the results must
reproduce the paper's orderings and scaling behaviour.
"""

import pytest

from repro.experiments import best_block_run, weak_scaling_batch
from repro.experiments.fig09_weak_scaling import run as fig9_run, speedup_over
from repro.hw import TPUV4
from repro.models import GPT3_175B, MEGATRON_NLG_530B


@pytest.fixture(scope="module")
def fig9_rows_256():
    return fig9_run(
        models=(GPT3_175B, MEGATRON_NLG_530B),
        sizes=(256,),
        algorithms=("cannon", "summa", "collective", "wang", "meshslice",
                    "1dtp", "fsdp"),
    )


class TestHeadlineClaims:
    def test_meshslice_fastest_at_256(self, fig9_rows_256):
        """Figure 9: MeshSlice wins on both models at 256 chips."""
        for model in (GPT3_175B.name, MEGATRON_NLG_530B.name):
            utils = {
                r.algorithm: r.utilization
                for r in fig9_rows_256
                if r.model == model and r.utilization is not None
            }
            assert max(utils, key=utils.get) == "meshslice"

    def test_end_to_end_speedup_matches_paper_band(self, fig9_rows_256):
        """Paper: 12.0% (GPT-3) and 23.4% (Megatron) over Wang.

        The reproduction must land in the right band: a clear,
        positive, single-digit-to-tens-of-percent end-to-end win.
        """
        for model, lo, hi in (
            (GPT3_175B.name, 0.05, 0.30),
            (MEGATRON_NLG_530B.name, 0.05, 0.35),
        ):
            _fc, e2e = speedup_over(fig9_rows_256, model, 256)
            assert lo <= e2e <= hi, (model, e2e)

    def test_1d_methods_collapse_at_scale(self, fig9_rows_256):
        """Section 5.1.2: 1D TP and FSDP are far behind at 256 chips."""
        for model in (GPT3_175B.name,):
            utils = {
                r.algorithm: r.utilization
                for r in fig9_rows_256
                if r.model == model and r.utilization is not None
            }
            assert utils["1dtp"] < utils["collective"] / 2
            assert utils["fsdp"] < utils["collective"] / 2

    def test_wang_between_meshslice_and_collective(self, fig9_rows_256):
        for model in (GPT3_175B.name, MEGATRON_NLG_530B.name):
            utils = {
                r.algorithm: r.utilization
                for r in fig9_rows_256
                if r.model == model and r.utilization is not None
            }
            assert utils["meshslice"] > utils["wang"] > utils["collective"]

    def test_megatron_more_efficient_than_gpt3(self, fig9_rows_256):
        """The larger model is more compute-bound, so every overlap
        method achieves higher utilization on it (Figure 9)."""
        ms = {
            r.model: r.utilization
            for r in fig9_rows_256
            if r.algorithm == "meshslice"
        }
        assert ms[MEGATRON_NLG_530B.name] > ms[GPT3_175B.name]


class TestScalingBehaviour:
    def test_weak_scaling_efficiency_declines_gently(self):
        """Paper: GPT-3 MeshSlice loses ~17% from 16- to 256-way; the
        reproduction must show a mild, monotone-ish decline."""
        utils = {}
        for chips in (16, 256):
            run = best_block_run(
                "meshslice", GPT3_175B, weak_scaling_batch(chips), chips, TPUV4
            )
            utils[chips] = run.utilization(TPUV4)
        loss = 1 - utils[256] / utils[16]
        assert 0.0 < loss < 0.35

    def test_strong_scaling_shrinks_overlap_gain(self):
        """Figure 12: at 256 chips with batch 32 the run becomes
        communication-bound: everyone's utilization drops and the
        absolute gap between MeshSlice and Collective narrows."""
        def utils(batch, chips):
            ms = best_block_run("meshslice", GPT3_175B, batch, chips, TPUV4)
            coll = best_block_run("collective", GPT3_175B, batch, chips, TPUV4)
            return ms.utilization(TPUV4), coll.utilization(TPUV4)

        weak_ms, weak_coll = utils(weak_scaling_batch(256), 256)
        strong_ms, strong_coll = utils(32, 256)
        assert strong_ms < weak_ms
        assert strong_coll < weak_coll
        assert (strong_ms - strong_coll) < (weak_ms - weak_coll)

    def test_meshslice_never_slower_than_collective_anywhere(self):
        """Section 5.1.1: MeshSlice can always fall back to S = 1."""
        for chips in (16, 64):
            for model in (GPT3_175B,):
                batch = weak_scaling_batch(chips)
                ms = best_block_run("meshslice", model, batch, chips, TPUV4)
                coll = best_block_run("collective", model, batch, chips, TPUV4)
                assert ms.seconds <= coll.seconds * 1.02
