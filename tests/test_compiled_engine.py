"""Behavior of the compiled engine beyond bit-identity.

``tests/test_engine_equivalence.py`` proves the spans match the seed
engine; this file pins the surrounding contracts: engine selection,
the full-simulation fallback under fault plans, robustness against
lying (untrusted) motif annotations, the :class:`CompileStats`
accounting, and the observability counters the compile publishes.
"""

from __future__ import annotations

import pytest

from repro.algorithms import GeMMConfig, get_algorithm
from repro.core import Dataflow, GeMMShape
from repro.faults.plan import FaultPlan
from repro.hw import get_preset
from repro.mesh import Mesh2D
from repro.obs.registry import GLOBAL_REGISTRY
from repro.sim.compiled import (
    ENGINE_NAMES,
    CompiledEngine,
    default_engine,
    set_default_engine,
)
from repro.sim.engine import Engine
from repro.sim.program import repeat_program

TPUV4 = get_preset("tpuv4-sim")


@pytest.fixture(autouse=True)
def _reset_engine_choice(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    set_default_engine(None)
    yield
    set_default_engine(None)


def _block(slices: int = 8):
    cfg = GeMMConfig(
        shape=GeMMShape(4096, 4096, 8192),
        mesh=Mesh2D(4, 4),
        dataflow=Dataflow.OS,
        slices=slices,
    )
    return get_algorithm("meshslice").build_program(cfg, TPUV4)


def _span_key(spans):
    return [(s.aid, s.label, s.start, s.end) for s in spans]


# ------------------------------------------------------------ selection


def test_engine_names_and_default():
    assert ENGINE_NAMES == ("heap", "compiled")
    assert default_engine() == "heap"


def test_set_default_engine_round_trip():
    set_default_engine("compiled")
    assert default_engine() == "compiled"
    set_default_engine(None)
    assert default_engine() == "heap"
    with pytest.raises(ValueError):
        set_default_engine("vliw")


def test_env_var_selects_engine(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "compiled")
    assert default_engine() == "compiled"
    monkeypatch.setenv("REPRO_ENGINE", "warp-drive")
    assert default_engine() == "heap"
    # The explicit choice wins over the environment.
    set_default_engine("heap")
    monkeypatch.setenv("REPRO_ENGINE", "compiled")
    assert default_engine() == "heap"


def test_program_run_engines_agree():
    program = repeat_program(_block(), 6)
    heap_spans = program.run(engine="heap")
    compiled_spans = program.run(engine="compiled")
    assert _span_key(heap_spans) == _span_key(compiled_spans)
    with pytest.raises(ValueError):
        program.run(engine="bogus")


# ------------------------------------------------------------- fallback


def test_fault_plan_forces_heap_and_counts_fallback():
    program = repeat_program(_block(), 4)
    plan = FaultPlan(compute_slowdown=1.5, seed=3)
    before = GLOBAL_REGISTRY.counter_value(
        "compile.fallbacks", labels={"reason": "fault-plan"}
    )
    spans, failure = program.execute(plan, engine="compiled")
    assert failure is None
    after = GLOBAL_REGISTRY.counter_value(
        "compile.fallbacks", labels={"reason": "fault-plan"}
    )
    assert after == before + 1
    # The fallback is a *full* heap simulation of the perturbed DAG.
    perturbed = plan.apply(program)
    heap = Engine(perturbed.activities, perturbed.shared_capacities).run()
    assert _span_key(spans) == _span_key(heap)


def test_null_fault_plan_keeps_compiled_engine():
    program = repeat_program(_block(), 4)
    before = GLOBAL_REGISTRY.counter_value(
        "compile.fallbacks", labels={"reason": "fault-plan"}
    )
    spans, failure = program.execute(FaultPlan(), engine="compiled")
    assert failure is None
    assert GLOBAL_REGISTRY.counter_value(
        "compile.fallbacks", labels={"reason": "fault-plan"}
    ) == before
    assert _span_key(spans) == _span_key(program.run(engine="heap"))


# ---------------------------------------------------- lying annotations


def test_lying_motif_hints_stay_bit_identical():
    """Untrusted annotations are re-validated, never believed.

    Every wrong hint — overlapping windows, periods that cross real
    structure boundaries, counts past the end of the program — must
    at worst cost composition, never correctness.
    """
    program = repeat_program(_block(), 8)
    n = len(program.activities)
    reference = _span_key(program.run(engine="heap"))
    bogus_hints = [
        ({"first": 0, "period": 7, "count": n // 7},),
        ({"first": 3, "period": 1, "count": n - 3},),
        ({"first": 0, "period": n // 2, "count": 4},),  # past the end
        ({"first": n - 2, "period": 2, "count": 1},),
        (
            {"first": 0, "period": 5, "count": 6},
            {"first": 1, "period": 11, "count": 3},
        ),
    ]
    for hints in bogus_hints:
        engine = CompiledEngine(
            program.activities, program.shared_capacities, motifs=hints
        )
        assert _span_key(engine.run()) == reference, hints


# ----------------------------------------------------------- accounting


def test_compile_stats_on_deep_stack():
    program = repeat_program(_block(), 32)
    engine = CompiledEngine(
        program.activities,
        program.shared_capacities,
        motifs=program.meta.get("motifs"),
    )
    engine.run()
    stats = engine.stats
    assert stats.fallback is None
    assert stats.motifs_found >= 1
    assert stats.motifs_validated >= 1
    assert stats.instances_composed > 0
    assert stats.instances_simulated >= 1  # the warm-up + steady probe
    assert (
        stats.instances_composed + stats.instances_simulated
        == stats.instances_total
    )
    assert stats.activities_composed > 0
    assert 0.0 < stats.composed_fraction <= 1.0
    assert stats.compile_seconds >= 0.0


def test_compile_counters_published():
    program = repeat_program(_block(), 16)
    names = (
        "compile.runs",
        "compile.motifs_found",
        "compile.motifs_validated",
        "compile.instances_composed",
        "compile.instances_simulated",
        "compile.activities_composed",
        "compile.seconds",
    )
    before = {n: GLOBAL_REGISTRY.counter_value(n) for n in names}
    program.run(engine="compiled")
    after = {n: GLOBAL_REGISTRY.counter_value(n) for n in names}
    assert after["compile.runs"] == before["compile.runs"] + 1
    for name in (
        "compile.motifs_found",
        "compile.motifs_validated",
        "compile.instances_composed",
        "compile.activities_composed",
    ):
        assert after[name] > before[name], name


def _chain(n, label="step", duration=1e-3, deps_fn=None):
    """``n`` identical chained compute activities, engine-input form."""
    from repro.sim.engine import Activity

    acts = []
    for i in range(n):
        deps = deps_fn(i) if deps_fn else ((i - 1,) if i else ())
        acts.append(
            Activity(
                aid=i,
                label=f"{label}[{i}]",
                kind="compute",
                duration=duration,
                exclusive=("core",),
                shared={"hbm": 0.5},
                deps=deps,
            )
        )
    return acts


def test_label_inference_composes_unannotated_programs():
    """``label[index]`` naming alone is enough to find the motif."""
    from repro.sim.compiled import infer_motifs

    acts = _chain(64)
    assert infer_motifs(acts) == [{"first": 0, "period": 1, "count": 64}]
    engine = CompiledEngine(acts, {"hbm": 1.0})  # motifs=None: infer
    spans = engine.run()
    assert _span_key(spans) == _span_key(Engine(acts, {"hbm": 1.0}).run())
    assert engine.stats.instances_composed > 0


def test_label_inference_rejects_irregular_naming():
    import dataclasses

    from repro.sim.compiled import infer_motifs
    from repro.sim.engine import Activity

    plain = [
        Activity(aid=i, label=f"a{i}", kind="compute", duration=0.1)
        for i in range(8)
    ]
    assert infer_motifs(plain) == []
    gapped = _chain(8)
    gapped[5] = dataclasses.replace(gapped[5], label="step[9]")
    assert infer_motifs(gapped) == []


def test_sparse_activity_ids_run_uncomposed():
    """Non-dense aids skip composition but still simulate correctly."""
    from repro.sim.engine import Activity

    acts = [
        Activity(
            aid=10 * (i + 1),
            label=f"op[{i}]",
            kind="compute",
            duration=0.25,
            exclusive=("core",),
            deps=(10 * i,) if i else (),
        )
        for i in range(6)
    ]
    engine = CompiledEngine(acts, {})
    spans = engine.run()
    assert _span_key(spans) == _span_key(Engine(acts, {}).run())
    assert engine.stats.instances_composed == 0


def test_invalid_dags_raise_like_the_engine():
    from repro.sim.engine import Activity, SimulationError

    dup = [
        Activity(aid=3, label="x", kind="compute", duration=1.0),
        Activity(aid=3, label="y", kind="compute", duration=1.0),
    ]
    with pytest.raises(SimulationError):
        CompiledEngine(dup, {})
    dangling = [
        Activity(aid=7, label="x", kind="compute", duration=1.0, deps=(99,)),
    ]
    with pytest.raises(SimulationError):
        CompiledEngine(dangling, {})
    import dataclasses

    dense_dangling = _chain(40)
    dense_dangling[39] = dataclasses.replace(
        dense_dangling[39], deps=(38, 10_000)
    )
    with pytest.raises(SimulationError):
        CompiledEngine(dense_dangling, {"hbm": 1.0}).run()


def test_malformed_hints_are_ignored():
    acts = _chain(48)
    reference = _span_key(Engine(acts, {"hbm": 1.0}).run())
    for hints in (
        ({"first": -1, "period": 1, "count": 48},),
        ({"first": 0, "period": 0, "count": 48},),
        ({"first": 0, "period": 1, "count": 1},),
        ({"first": 0, "period": 1},),  # missing count
        ({"first": "zero", "period": 1, "count": 48},),
        ({},),
    ):
        engine = CompiledEngine(acts, {"hbm": 1.0}, motifs=hints)
        assert _span_key(engine.run()) == reference, hints


def test_inner_motif_with_prologue_and_epilogue():
    """Non-motif activities on both sides bound the composition window."""
    from repro.hw import get_preset
    from repro.sim.program import ProgramBuilder

    builder = ProgramBuilder(get_preset("tpuv4-sim"))
    from repro.sim.engine import LINK_H

    prologue = builder.allgather("ag_w", 4, 1e6, LINK_H)
    prev = prologue
    loop = builder.mark()
    for i in range(48):
        prev = builder.gemm(f"gemm[{i}]", 1024, 1024, 1024, deps=[prev])
    builder.motif(loop, 48)
    builder.reducescatter("rds_c", 4, 1e6, LINK_H, deps=[prev])
    program = builder.build()
    engine = CompiledEngine(
        program.activities,
        program.shared_capacities,
        motifs=program.meta.get("motifs"),
    )
    spans = engine.run()
    assert _span_key(spans) == _span_key(
        Engine(program.activities, program.shared_capacities).run()
    )
    assert engine.stats.instances_composed > 0


def test_trusted_hint_with_dep_free_slots():
    """Per-instance root activities exercise the template-roots path."""
    from repro.sim.engine import Activity

    acts = []
    copies = 32
    for k in range(copies):
        base = 2 * k
        # Slot 0: an independent per-instance root (no deps at all).
        acts.append(
            Activity(
                aid=base,
                label=f"load[{k}]",
                kind="comm",
                duration=1e-4,
                exclusive=("link_h",),
                deps=(),
            )
        )
        deps = (base,) if k == 0 else (base, base - 1)
        acts.append(
            Activity(
                aid=base + 1,
                label=f"mm[{k}]",
                kind="compute",
                duration=2e-4,
                exclusive=("core",),
                deps=deps,
            )
        )
    hints = ({"first": 0, "period": 2, "count": copies, "trusted": True},)
    engine = CompiledEngine(acts, {}, motifs=hints)
    spans = engine.run()
    assert _span_key(spans) == _span_key(Engine(acts, {}).run())
    # All 32 roots are ready at t=0, so the wait queue drains
    # monotonically and no two instance boundaries ever fingerprint
    # alike: the honest outcome is a no-lock-in fallback, after the
    # template validated.
    assert engine.stats.motifs_validated == 1


def test_composed_queue_waits_match_heap():
    """Replay under wait capture: observations match full simulation."""
    from repro.sim.cluster import simulate

    program = repeat_program(_block(), 24)
    heap = simulate(program, TPUV4, engine="heap")
    compiled = simulate(program, TPUV4, engine="compiled")
    assert compiled.makespan == heap.makespan
    assert compiled.spans == heap.spans
    assert heap.metrics is not None and compiled.metrics is not None
    assert compiled.metrics.queue_wait == heap.metrics.queue_wait


def test_contended_motif_locks_with_parked_waiters():
    """Steady states whose fingerprints carry non-empty wait queues."""
    from repro.sim.engine import Activity

    acts = []
    copies = 40
    for k in range(copies):
        base = 3 * k
        acts.append(
            Activity(
                aid=base, label=f"mm[{k}]", kind="compute", duration=1.0,
                exclusive=("core",),
                deps=(base - 3,) if k else (),
            )
        )
        # Link work per instance (0.4 + 0.3) stays under the core's
        # 1.0 so the pipeline reaches a steady state, yet the two
        # transfers of adjacent instances contend for link_h and one
        # parks in its wait queue. Gating send_a on the previous GeMM
        # keeps the contention local to the boundary instance (an
        # unbounded run-ahead would never fingerprint steadily).
        acts.append(
            Activity(
                aid=base + 1, label=f"send_a[{k}]", kind="comm",
                duration=0.4, exclusive=("link_h",),
                deps=(base - 3, base - 2) if k else (),
            )
        )
        acts.append(
            Activity(
                aid=base + 2, label=f"send_b[{k}]", kind="comm",
                duration=0.3, exclusive=("link_h",),
                deps=(base, base + 1) if not k else (base, base + 1, base - 1),
            )
        )
    engine = CompiledEngine(acts, {})
    spans = engine.run()
    assert _span_key(spans) == _span_key(Engine(acts, {}).run())
    assert engine.stats.instances_composed > 0


def test_compile_counters_export_as_jsonl(tmp_path):
    """The ``compile.*`` series round-trip through the JSONL schema."""
    import json

    from repro.obs.export import collect_records, write_jsonl

    repeat_program(_block(), 8).run(engine="compiled")
    path = tmp_path / "metrics.jsonl"
    write_jsonl(collect_records(), str(path))
    records = [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]
    compile_records = [
        r for r in records if r["name"].startswith("compile.")
    ]
    assert compile_records, "compile.* counters missing from the export"
    for record in compile_records:
        assert record["type"] == "counter"
        assert isinstance(record["labels"], dict)
        assert isinstance(record["value"], (int, float))
    assert any(r["name"] == "compile.runs" for r in compile_records)
