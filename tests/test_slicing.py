"""Tests for MeshSlice's blocked slicing (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    set_slice_col,
    set_slice_row,
    slice_col,
    slice_row,
    unslice_col,
    unslice_row,
    valid_slice_counts,
)


class TestSliceCol:
    def test_interleaved_selection_block1(self):
        """With B = 1, sub-shard s holds every S-th column (Alg. 1)."""
        x = np.arange(24).reshape(2, 12)
        for s in range(3):
            expected = x[:, s::3]
            assert np.array_equal(slice_col(x, 3, s, block=1), expected)

    def test_blocked_selection(self):
        """With B = 2, sub-shards interleave blocks of 2 columns."""
        x = np.arange(16).reshape(2, 8)
        s0 = slice_col(x, 2, 0, block=2)
        assert np.array_equal(s0, x[:, [0, 1, 4, 5]])
        s1 = slice_col(x, 2, 1, block=2)
        assert np.array_equal(s1, x[:, [2, 3, 6, 7]])

    def test_output_shape(self):
        x = np.zeros((3, 24))
        assert slice_col(x, 4, 0, block=2).shape == (3, 6)

    def test_slice_count_one_is_identity(self, rng):
        x = rng.standard_normal((4, 8))
        assert np.array_equal(slice_col(x, 1, 0, block=2), x)

    def test_contiguous_output(self, rng):
        out = slice_col(rng.standard_normal((4, 12)), 3, 1, block=2)
        assert out.flags["C_CONTIGUOUS"]

    def test_rejects_bad_arguments(self):
        x = np.zeros((2, 12))
        with pytest.raises(ValueError, match="not divisible"):
            slice_col(x, 5, 0, block=1)
        with pytest.raises(ValueError, match="out of range"):
            slice_col(x, 3, 3, block=1)
        with pytest.raises(ValueError):
            slice_col(x, 0, 0, block=1)
        with pytest.raises(ValueError):
            slice_col(x, 2, 0, block=0)
        with pytest.raises(ValueError, match="2D"):
            slice_col(np.zeros(12), 2, 0)


class TestSliceRow:
    def test_interleaved_selection(self):
        x = np.arange(24).reshape(12, 2)
        for s in range(4):
            assert np.array_equal(slice_row(x, 4, s, block=1), x[s::4, :])

    def test_symmetry_with_slice_col(self, rng):
        x = rng.standard_normal((12, 8))
        a = slice_row(x, 3, 1, block=2)
        b = slice_col(x.T, 3, 1, block=2).T
        assert np.array_equal(a, b)


class TestRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(
        slices=st.integers(1, 6),
        block=st.integers(1, 4),
        groups=st.integers(1, 4),
        rows=st.integers(1, 6),
    )
    def test_slice_unslice_col(self, slices, block, groups, rows):
        cols = slices * block * groups
        x = np.arange(rows * cols, dtype=float).reshape(rows, cols)
        subs = [slice_col(x, slices, s, block) for s in range(slices)]
        assert np.array_equal(unslice_col(subs, block), x)

    @settings(max_examples=40, deadline=None)
    @given(
        slices=st.integers(1, 6),
        block=st.integers(1, 4),
        groups=st.integers(1, 4),
        cols=st.integers(1, 6),
    )
    def test_slice_unslice_row(self, slices, block, groups, cols):
        rows = slices * block * groups
        x = np.arange(rows * cols, dtype=float).reshape(rows, cols)
        subs = [slice_row(x, slices, s, block) for s in range(slices)]
        assert np.array_equal(unslice_row(subs, block), x)

    def test_set_slice_col_inverts_slice_col(self, rng):
        x = rng.standard_normal((4, 12))
        value = rng.standard_normal((4, 4))
        set_slice_col(x, 3, 1, value, block=2)
        assert np.array_equal(slice_col(x, 3, 1, block=2), value)

    def test_set_slice_row_inverts_slice_row(self, rng):
        x = rng.standard_normal((12, 4))
        value = rng.standard_normal((4, 4))
        set_slice_row(x, 3, 2, value, block=1)
        assert np.array_equal(slice_row(x, 3, 2, block=1), value)

    def test_set_slice_shape_checked(self):
        x = np.zeros((4, 12))
        with pytest.raises(ValueError, match="value shape"):
            set_slice_col(x, 3, 0, np.zeros((4, 5)), block=2)
        with pytest.raises(ValueError, match="value shape"):
            set_slice_row(np.zeros((12, 4)), 3, 0, np.zeros((5, 4)), block=1)

    def test_unslice_rejects_mismatched(self):
        with pytest.raises(ValueError):
            unslice_col([np.zeros((2, 2)), np.zeros((2, 3))], block=1)
        with pytest.raises(ValueError):
            unslice_col([], block=1)

    def test_disjoint_coverage(self):
        """Each column appears in exactly one sub-shard."""
        x = np.arange(24).reshape(1, 24)
        seen = np.concatenate(
            [slice_col(x, 4, s, block=2).ravel() for s in range(4)]
        )
        assert sorted(seen.tolist()) == list(range(24))


class TestValidSliceCounts:
    def test_divisors_of_extent_over_block(self):
        assert valid_slice_counts(48, 8) == [1, 2, 3, 6]
        assert valid_slice_counts(64, 8) == [1, 2, 4, 8]

    def test_rejects_nondividing_block(self):
        with pytest.raises(ValueError):
            valid_slice_counts(10, 4)

    def test_all_returned_counts_work(self, rng):
        extent, block = 48, 4
        x = rng.standard_normal((2, extent))
        for s_count in valid_slice_counts(extent, block):
            out = slice_col(x, s_count, 0, block)
            assert out.shape == (2, extent // s_count)
