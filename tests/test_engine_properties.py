"""Property-based tests of simulator invariants.

Fuzzes random activity DAGs and random algorithm configurations and
checks the invariants any correct scheduler must maintain: exclusive
resources never double-booked, dependencies never violated, makespan
bounded below by the critical path and resource load, and FLOPs
conserved across granularities.
"""


import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import GeMMConfig, get_algorithm
from repro.core import Dataflow, GeMMShape
from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.sim import Activity, CORE, Engine, LINK_H, makespan


@st.composite
def random_dag(draw, allow_exclusive=True, kinds=("compute",)):
    """A random well-formed activity DAG over two exclusive resources.

    ``allow_exclusive=False`` restricts the DAG to purely fluid-shared
    activities (no exclusive resources, hence no service queues).
    ``kinds`` widens the activity kinds drawn; ``"comm"`` activities
    get a random launch/transfer/sync meta split the way real builders
    record it, so trace aggregations see realistic metadata.
    """
    count = draw(st.integers(1, 14))
    resource_choices = (
        [(), (CORE,), (LINK_H,), (CORE, LINK_H)]
        if allow_exclusive
        else [()]
    )
    activities = []
    for aid in range(count):
        duration = draw(
            st.floats(0.0, 3.0, allow_nan=False, allow_infinity=False)
        )
        kind = draw(st.sampled_from(list(kinds)))
        resource = draw(st.sampled_from(resource_choices))
        dep_pool = list(range(aid))
        deps = tuple(
            sorted(
                set(
                    draw(
                        st.lists(
                            st.sampled_from(dep_pool), max_size=min(3, aid)
                        )
                    )
                )
            )
        ) if dep_pool else ()
        shared = {}
        if draw(st.booleans()):
            shared["hbm"] = draw(st.floats(1.0, 200.0))
        meta = {}
        if kind == "comm" and duration > 0.0:
            launch_frac = draw(st.floats(0.0, 0.3))
            sync_frac = draw(st.floats(0.0, 0.3))
            meta = {
                "launch": duration * launch_frac,
                "sync": duration * sync_frac,
                "transfer": duration * (1.0 - launch_frac - sync_frac),
            }
        activities.append(
            Activity(
                aid=aid,
                label=f"a{aid}",
                kind=kind,
                duration=duration,
                exclusive=resource,
                shared=shared,
                deps=deps,
                meta=meta,
            )
        )
    return activities


class TestEngineInvariants:
    @settings(max_examples=80, deadline=None)
    @given(random_dag())
    def test_dependencies_and_exclusivity(self, activities):
        spans = Engine(activities, {"hbm": 100.0}).run()
        assert len(spans) == len(activities)
        by_id = {s.aid: s for s in spans}
        eps = 1e-9
        # Dependencies respected.
        for act in activities:
            for dep in act.deps:
                assert by_id[act.aid].start >= by_id[dep].end - eps
        # Exclusive resources never double-booked.
        for resource in (CORE, LINK_H):
            holders = sorted(
                (s.start, s.end)
                for s in spans
                if resource in s.exclusive and s.duration > 0
            )
            for (s1, e1), (s2, e2) in zip(holders, holders[1:]):
                assert s2 >= e1 - eps

    @settings(max_examples=80, deadline=None)
    @given(random_dag())
    def test_makespan_lower_bounds(self, activities):
        spans = Engine(activities, {"hbm": 100.0}).run()
        total = makespan(spans)
        # Bound 1: total duration on each exclusive resource.
        for resource in (CORE, LINK_H):
            load = sum(
                a.duration for a in activities if resource in a.exclusive
            )
            assert total >= load - 1e-9
        # Bound 2: the dependency critical path.
        longest = {}
        for act in activities:  # ids are topologically ordered
            longest[act.aid] = act.duration + max(
                (longest[d] for d in act.deps), default=0.0
            )
        assert total >= max(longest.values()) - 1e-9

    @settings(max_examples=120, deadline=None)
    @given(random_dag(allow_exclusive=False))
    def test_oversubscription_never_speeds_up(self, activities):
        """Reducing shared capacity can only increase the makespan —
        for purely fluid-shared DAGs.

        The restriction to ``allow_exclusive=False`` is essential: with
        exclusive resources the engine is a greedy non-preemptive list
        scheduler, and those are famously *not* monotone (Graham's
        scheduling anomalies). Slowing one activity can delay a rival
        past its turn in a service queue, flip the greedy service
        order, and finish the whole DAG *earlier* — hypothesis finds
        such 9-activity counterexamples. Without exclusive queues every
        activity starts the instant its deps finish and fluid progress
        rates are pointwise non-decreasing in capacity, so completion
        times are monotone by induction over events.
        """
        fast = makespan(Engine(activities, {"hbm": 200.0}).run())
        slow = makespan(Engine(activities, {"hbm": 50.0}).run())
        assert slow >= fast - 1e-9


class TestAlgorithmFuzz:
    MESHES = [Mesh2D(2, 2), Mesh2D(4, 2), Mesh2D(2, 4), Mesh2D(4, 4)]

    @settings(max_examples=40, deadline=None)
    @given(
        mesh_idx=st.integers(0, 3),
        dataflow=st.sampled_from(list(Dataflow)),
        slices=st.sampled_from([1, 2, 4]),
        m=st.integers(1, 8),
        n=st.integers(1, 8),
        k=st.integers(1, 8),
        name=st.sampled_from(["meshslice", "summa", "wang", "1dtp", "fsdp"]),
    )
    def test_random_configs_simulate_and_conserve_flops(
        self, mesh_idx, dataflow, slices, m, n, k, name
    ):
        mesh = self.MESHES[mesh_idx]
        shape = GeMMShape(m * 512, n * 512, k * 512)
        cfg = GeMMConfig(
            shape, mesh, dataflow,
            slices=1 if name == "collective" else slices,
        )
        alg = get_algorithm(name)
        if not alg.supports(cfg):
            return
        program = alg.build_program(cfg, TPUV4)
        spans = program.run()
        assert makespan(spans) > 0
        # Granularity never changes the useful FLOPs (within the
        # rounding the integer group splits introduce).
        assert program.total_flops == pytest.approx(
            shape.flops / mesh.size, rel=0.35
        )

    @settings(max_examples=20, deadline=None)
    @given(
        slices=st.sampled_from([1, 2, 4, 8]),
        dataflow=st.sampled_from(list(Dataflow)),
    )
    def test_meshslice_flops_exact(self, slices, dataflow):
        """MeshSlice's slicing partitions the GeMM exactly."""
        shape = GeMMShape(4096, 4096, 4096)
        cfg = GeMMConfig(shape, Mesh2D(4, 4), dataflow, slices=slices)
        alg = get_algorithm("meshslice")
        program = alg.build_program(cfg, TPUV4)
        assert program.total_flops == pytest.approx(shape.flops / 16)

    def test_deterministic_simulation(self):
        cfg = GeMMConfig(
            GeMMShape(8192, 8192, 8192), Mesh2D(4, 4), Dataflow.LS, slices=4
        )
        alg = get_algorithm("meshslice")
        first = alg.build_program(cfg, TPUV4).run()
        second = alg.build_program(cfg, TPUV4).run()
        assert [
            (s.label, s.start, s.end) for s in first
        ] == [(s.label, s.start, s.end) for s in second]
