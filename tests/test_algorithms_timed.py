"""Tests for the timed (simulator) plane of every algorithm.

These pin the paper's structural performance claims: overlap emerges
from the program DAGs, MeshSlice hides communication that Collective
exposes, Wang overlaps only one direction, prologue/epilogue behave as
Section 3.2.2 describes, and the no-overlap hardware mode serializes.
"""

import dataclasses

import pytest

from repro.algorithms import (
    GeMMConfig,
    TWO_D_ALGORITHMS,
    collective_local_dims,
    effective_problem,
    flow_ops,
    get_algorithm,
    sliced_local_dims,
    traffic_seconds,
)
from repro.core import Dataflow, GeMMShape
from repro.hw import TPUV4, TPUV4_CLOUD_4X4
from repro.mesh import Mesh2D
from repro.sim import LINK_H, simulate

#: A deliberately communication-heavy GeMM on a small mesh.
COMM_HEAVY = GeMMShape(m=8192, n=8192, k=8192)
BIG = GeMMShape(m=262144, n=49152, k=12288)


def run(name, cfg, hw=TPUV4):
    alg = get_algorithm(name)
    return simulate(alg.build_program(cfg, hw), hw)


class TestFlowOps:
    def test_os_gathers_both_inputs(self):
        assert flow_ops(Dataflow.OS) == ((("ag", "a")), ("ag", "b"))

    def test_ls_scatters_output_horizontally(self):
        (col, row) = flow_ops(Dataflow.LS)
        assert col == ("rds", "c")
        assert row == ("ag", "b")

    def test_rs_scatters_output_vertically(self):
        (col, row) = flow_ops(Dataflow.RS)
        assert col == ("ag", "a")
        assert row == ("rds", "c")

    def test_transposed_swaps_directions(self):
        normal = flow_ops(Dataflow.LS)
        transposed = flow_ops(Dataflow.LS, transposed=True)
        assert transposed == (normal[1], normal[0])


class TestEffectiveProblem:
    def test_identity_when_not_transposed(self):
        cfg = GeMMConfig(BIG, Mesh2D(4, 4), Dataflow.LS)
        shape, dataflow = effective_problem(cfg)
        assert shape == BIG and dataflow is Dataflow.LS

    def test_transposition_swaps_ls_rs(self):
        cfg = GeMMConfig(BIG, Mesh2D(4, 4), Dataflow.LS, transposed=True)
        shape, dataflow = effective_problem(cfg)
        assert shape == BIG.transposed()
        assert dataflow is Dataflow.RS

    def test_os_stays_os(self):
        cfg = GeMMConfig(BIG, Mesh2D(4, 4), Dataflow.OS, transposed=True)
        _shape, dataflow = effective_problem(cfg)
        assert dataflow is Dataflow.OS


class TestLocalDims:
    def test_collective_os(self):
        cfg = GeMMConfig(GeMMShape(64, 32, 128), Mesh2D(4, 2), Dataflow.OS)
        assert collective_local_dims(cfg) == (16, 16, 128)

    def test_collective_ls(self):
        cfg = GeMMConfig(GeMMShape(64, 32, 128), Mesh2D(4, 2), Dataflow.LS)
        assert collective_local_dims(cfg) == (16, 32, 64)

    def test_collective_rs(self):
        cfg = GeMMConfig(GeMMShape(64, 32, 128), Mesh2D(4, 2), Dataflow.RS)
        assert collective_local_dims(cfg) == (64, 16, 32)

    def test_sliced_dims_split_right_axis(self):
        cfg = GeMMConfig(GeMMShape(64, 32, 128), Mesh2D(4, 2), Dataflow.OS)
        assert sliced_local_dims(cfg, 4) == (16, 16, 32)
        cfg_ls = dataclasses.replace(cfg, dataflow=Dataflow.LS)
        assert sliced_local_dims(cfg_ls, 4) == (16, 8, 64)
        cfg_rs = dataclasses.replace(cfg, dataflow=Dataflow.RS)
        assert sliced_local_dims(cfg_rs, 4) == (16, 16, 32)

    def test_flops_conserved_across_slices(self):
        cfg = GeMMConfig(BIG, Mesh2D(8, 4), Dataflow.OS)
        m, n, k = sliced_local_dims(cfg, 8)
        assert 8 * 2 * m * n * k == pytest.approx(BIG.flops / cfg.chips)


class TestTrafficModel:
    def test_matches_paper_formula(self):
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS)
        col, row = traffic_seconds(cfg, TPUV4)
        bw = TPUV4.ring_bandwidth
        assert col == pytest.approx(7 * BIG.a_bytes / 256 / bw)
        assert row == pytest.approx(31 * BIG.b_bytes / 256 / bw)

    def test_balanced_mesh_minimizes_max_traffic(self):
        """The traffic-optimal shape follows the size ratio rule."""
        cfg_template = GeMMConfig(BIG, Mesh2D(1, 256), Dataflow.OS)
        costs = {}
        for rows in (2, 4, 8, 16, 32, 64, 128):
            mesh = Mesh2D(rows, 256 // rows)
            cfg = dataclasses.replace(cfg_template, mesh=mesh)
            costs[rows] = max(traffic_seconds(cfg, TPUV4))
        best_rows = min(costs, key=costs.get)
        # sizeof(A)/sizeof(B) ~ 5.3, so P_r/P_c ~ 5.3 -> 32x8 or 64x4.
        assert best_rows in (32, 64)


class TestMeshSliceTimed:
    def test_more_slices_hide_more_comm(self):
        cfg1 = GeMMConfig(COMM_HEAVY, Mesh2D(4, 4), Dataflow.OS, slices=1)
        cfg8 = dataclasses.replace(cfg1, slices=8)
        assert run("meshslice", cfg8).makespan < run("meshslice", cfg1).makespan

    def test_huge_slice_count_backfires(self):
        """Per-iteration overheads eventually beat the overlap gain."""
        base = GeMMConfig(COMM_HEAVY, Mesh2D(4, 4), Dataflow.OS, slices=8)
        huge = dataclasses.replace(base, slices=512)
        assert run("meshslice", huge).makespan > run("meshslice", base).makespan

    def test_unsupported_slice_count_reported(self):
        cfg = GeMMConfig(GeMMShape(64, 64, 64), Mesh2D(4, 4), slices=7)
        assert get_algorithm("meshslice").check_support(cfg) is not None

    @pytest.mark.parametrize("dataflow", list(Dataflow))
    def test_all_dataflows_build_and_run(self, dataflow):
        cfg = GeMMConfig(COMM_HEAVY, Mesh2D(4, 2), dataflow, slices=4)
        result = run("meshslice", cfg)
        assert result.makespan > 0
        assert result.flops_per_chip == pytest.approx(COMM_HEAVY.flops / 8)

    def test_transposed_variant_runs(self):
        cfg = GeMMConfig(COMM_HEAVY, Mesh2D(4, 2), Dataflow.LS, 4, transposed=True)
        assert run("meshslice", cfg).makespan > 0

    def test_overlap_hides_communication(self):
        """With overlap, makespan is far below compute + comm."""
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS, slices=8)
        result = run("meshslice", cfg)
        comm = result.comm.total
        serial = result.compute_seconds + comm
        assert result.makespan < 0.9 * serial


class TestCollectiveTimed:
    def test_no_overlap_by_structure(self):
        """Collective's makespan ~ comm + compute even on overlap HW."""
        cfg = GeMMConfig(COMM_HEAVY, Mesh2D(4, 4), Dataflow.OS, slices=1)
        result = run("collective", cfg)
        # The two AGs run in parallel (different links), then the GeMM.
        assert result.makespan >= result.compute_seconds
        assert result.makespan == pytest.approx(
            result.compute_seconds + max(
                s.duration for s in result.spans if s.kind == "comm"
            ),
            rel=0.05,
        )

    def test_slices_must_be_one(self):
        cfg = GeMMConfig(COMM_HEAVY, Mesh2D(4, 4), slices=2)
        assert get_algorithm("collective").check_support(cfg) is not None

    def test_meshslice_never_loses_to_collective(self):
        """MeshSlice can always fall back to S = 1 (Section 5.1.1)."""
        for dataflow in Dataflow:
            cfg = GeMMConfig(BIG, Mesh2D(16, 16), dataflow, slices=8)
            collective_cfg = dataclasses.replace(cfg, slices=1)
            ms = run("meshslice", cfg).makespan
            coll = run("collective", collective_cfg).makespan
            assert ms < coll * 1.02, dataflow


class TestWangTimed:
    def test_between_collective_and_meshslice(self):
        mesh = Mesh2D(16, 16)
        base = GeMMConfig(BIG, mesh, Dataflow.OS, slices=8)
        wang = run("wang", base).makespan
        coll = run("collective", dataclasses.replace(base, slices=1)).makespan
        ms = run("meshslice", base).makespan
        assert ms <= wang * 1.02
        assert wang <= coll * 1.02

    @pytest.mark.parametrize("dataflow", list(Dataflow))
    def test_all_dataflows_run(self, dataflow):
        cfg = GeMMConfig(COMM_HEAVY, Mesh2D(4, 4), dataflow, slices=4)
        assert run("wang", cfg).makespan > 0

    def test_decomposes_larger_direction(self):
        """The SendRecv pipeline covers the matrix with more traffic."""
        cfg = GeMMConfig(BIG, Mesh2D(2, 128), Dataflow.OS, slices=8)
        program = get_algorithm("wang").build_program(cfg, TPUV4)
        sendrecvs = [a for a in program.activities if "sendrecv" in a.label]
        # A (the bigger flowing matrix here) moves inter-column.
        assert all(a.exclusive[0] == LINK_H for a in sendrecvs)


class TestCannonTimed:
    def test_skew_prologue_present(self):
        cfg = GeMMConfig(COMM_HEAVY, Mesh2D(4, 4), Dataflow.OS)
        program = get_algorithm("cannon").build_program(cfg, TPUV4)
        labels = [a.label for a in program.activities]
        assert "skew_a" in labels and "skew_b" in labels

    def test_more_traffic_than_collective(self):
        """Skew plus full-shard shifts exceed ring AG traffic."""
        cfg = GeMMConfig(BIG, Mesh2D(16, 16), Dataflow.OS)
        cannon = run("cannon", cfg)
        coll = run("collective", dataclasses.replace(cfg, slices=1))
        assert cannon.comm.transfer > coll.comm.transfer

    def test_rejects_rectangular(self):
        cfg = GeMMConfig(BIG, Mesh2D(32, 8), Dataflow.OS)
        with pytest.raises(ValueError, match="square"):
            get_algorithm("cannon").build_program(cfg, TPUV4)


class TestSummaTimed:
    def test_sync_overhead_grows_with_ring_size(self):
        """SUMMA's defining pathology (Section 2.3.3): at a fixed
        cluster size, elongating the mesh grows the per-broadcast
        pipeline (more stages, more synchronizations)."""
        balanced = GeMMConfig(BIG, Mesh2D(16, 16), Dataflow.OS, slices=8)
        elongated = GeMMConfig(BIG, Mesh2D(2, 128), Dataflow.OS, slices=8)
        syncs_balanced = sum(
            s.meta.get("syncs", 0) for s in run("summa", balanced).spans
        )
        syncs_elongated = sum(
            s.meta.get("syncs", 0) for s in run("summa", elongated).spans
        )
        assert syncs_elongated > syncs_balanced

    def test_more_syncs_than_meshslice(self):
        cfg = GeMMConfig(BIG, Mesh2D(16, 16), Dataflow.OS, slices=8)
        summa_syncs = sum(
            s.meta.get("syncs", 0) for s in run("summa", cfg).spans
        )
        ms_syncs = sum(
            s.meta.get("syncs", 0) for s in run("meshslice", cfg).spans
        )
        assert summa_syncs > ms_syncs


class TestOneDTimed:
    def test_1d_traffic_exceeds_2d(self):
        """Linear traffic growth vs ring-size growth (Section 2.2)."""
        shape = BIG
        oned = GeMMConfig(shape, Mesh2D(1, 256), Dataflow.OS, slices=8)
        twod = GeMMConfig(shape, Mesh2D(32, 8), Dataflow.OS, slices=8)
        r1 = run("1dtp", oned)
        r2 = run("meshslice", twod)
        assert r1.comm.transfer > 2 * r2.comm.transfer
        assert r1.makespan > r2.makespan

    def test_fsdp_moves_weight_traffic(self):
        cfg = GeMMConfig(BIG, Mesh2D(1, 64), Dataflow.OS, slices=8)
        result = run("fsdp", cfg)
        expected = 63 / 64 * BIG.b_bytes / TPUV4.ring_bandwidth
        assert result.comm.transfer == pytest.approx(expected, rel=0.05)


class TestNoOverlapMode:
    @pytest.mark.parametrize("name", TWO_D_ALGORITHMS)
    def test_no_overlap_never_faster(self, name):
        mesh = Mesh2D(4, 4)
        cfg = GeMMConfig(
            COMM_HEAVY, mesh, Dataflow.OS,
            slices=1 if name == "collective" else 4,
        )
        with_overlap = run(name, cfg, TPUV4).makespan
        hw_serial = TPUV4.with_overrides(
            overlap_collectives=False,
            overlap_sendrecv=False,
            links_per_direction=1,
        )
        without = run(name, cfg, hw_serial).makespan
        assert without >= with_overlap

    def test_meshslice_small_overhead_vs_collective_when_serialized(self):
        """Table 3: stripped of overlap, MeshSlice pays only its
        slicing and fine-grain overheads over Collective."""
        mesh = Mesh2D(4, 4)
        ms_cfg = GeMMConfig(BIG, mesh, Dataflow.OS, slices=8)
        coll_cfg = dataclasses.replace(ms_cfg, slices=1)
        ms = run("meshslice", ms_cfg, TPUV4_CLOUD_4X4).makespan
        coll = run("collective", coll_cfg, TPUV4_CLOUD_4X4).makespan
        assert ms > coll  # overhead exists...
        assert ms < coll * 1.25  # ...but stays modest
