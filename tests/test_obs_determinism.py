"""Byte-determinism of the metrics exports.

The JSONL exporter promises byte-identical output for identical
workloads — across processes, across ``PYTHONHASHSEED``, and across
``grid_map`` worker counts (worker deltas merge in input order). These
tests pin that promise end to end by running real workloads in
subprocesses and comparing the raw bytes they emit.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: A seeded robust-tune over a fault ensemble, metrics to stdout.
FAULTS_SCRIPT = """
import sys
from repro import FaultSpec, TPUV4, TuneRequest, robust_tune
from repro.models import get_model
from repro.obs.export import collect_records, dumps_records

spec = FaultSpec(
    stragglers=1, straggler_slowdown=1.4, degraded_links=1,
    link_slowdown=1.5, launch_jitter=1e-6, outage_rate=0.05, seed=7,
)
result = robust_tune(TuneRequest(
    model=get_model("gpt3-175b"), batch=8, chips=16, hw=TPUV4,
    mode="robust", spec=spec, ensemble=4,
))
sys.stdout.write(f"mesh={result.mesh.shape}\\n")
sys.stdout.write(dumps_records(collect_records()))
"""

#: A grid of real simulations mapped over N workers, metrics to stdout.
GRID_SCRIPT = """
import sys
from repro.experiments.common import grid_map
from repro.obs.export import collect_records, dumps_records


def point(n):
    from repro import TPUV4, get_algorithm, simulate
    from repro.algorithms import GeMMConfig
    from repro.core import Dataflow, GeMMShape
    from repro.mesh import Mesh2D

    cfg = GeMMConfig(
        GeMMShape(512 * (1 + n % 3), 512, 512),
        Mesh2D(2, 2),
        Dataflow.OS,
        slices=1,
    )
    program = get_algorithm("meshslice").build_program(cfg, TPUV4)
    return simulate(program, TPUV4).makespan


jobs = int(sys.argv[1])
out = grid_map(point, list(range(12)), jobs=jobs)
sys.stdout.write(f"points={len(out)}\\n")
sys.stdout.write(dumps_records(collect_records(include_caches=False)))
"""


#: A seeded SDC injection + ABFT-protected GeMM, events and metrics
#: to stdout. Exercises the shared FaultSpec/SDCPlan seeding
#: convention end to end: identical seeds must flip identical bits at
#: identical coordinates regardless of hash randomization.
SDC_SCRIPT = """
import sys
import numpy as np
from repro.abft import abft_gemm
from repro.faults import SDCPlan, sdc_injection
from repro.mesh import Mesh2D
from repro.obs.export import collect_records, dumps_records

rng = np.random.default_rng(12)
a = rng.integers(-4, 5, (16, 24)).astype(np.float64)
b = rng.integers(-4, 5, (24, 16)).astype(np.float64)

for plan in SDCPlan(rate=0.4, seed=2025, bit=48, max_flips=2).ensemble(3):
    c, report = abft_gemm(
        a, b, Mesh2D(2, 2), algorithm="meshslice", slices=2, plan=plan
    )
    sys.stdout.write(f"seed={plan.seed} exact={np.array_equal(c, a @ b)}\\n")
    for event in report.flips:
        sys.stdout.write(f"{event}\\n")

with sdc_injection(SDCPlan(rate=1.0, seed=9, max_flips=3)) as injector:
    from repro.core import meshslice_os
    meshslice_os(a, b, Mesh2D(2, 2), slices=2)
for event in injector.events:
    sys.stdout.write(f"{event}\\n")
sys.stdout.write(dumps_records(collect_records(include_caches=False)))
"""


#: Serve a query mix (with duplicates) through the tuning service into
#: a plan store, then print every stored record's address and content
#: hash. The store contract: the same canonical config produces the
#: identical record bytes whatever the worker count, arrival order, or
#: warm-start path that produced it.
STORE_SCRIPT = """
import hashlib
import os
import sys
from repro import TPUV4, TuneRequest, TunerService
from repro.models import get_model

root, jobs = sys.argv[1], int(sys.argv[2])
model = get_model("gpt3-175b")
requests = [
    TuneRequest(model=model, batch=8, chips=chips, hw=TPUV4)
    for chips in (16, 32, 16, 32, 64)
]
with TunerService(root, workers=jobs) as svc:
    svc.serve_many(requests)
for dirpath, dirs, files in sorted(os.walk(root)):
    dirs.sort()
    for name in sorted(files):
        path = os.path.join(dirpath, name)
        with open(path, "rb") as handle:
            digest = hashlib.sha256(handle.read()).hexdigest()
        sys.stdout.write(f"{os.path.relpath(path, root)} {digest}\\n")
"""


def _run(script, *args, hashseed="0"):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hashseed
    env.pop("REPRO_NO_METRICS", None)
    proc = subprocess.run(
        [sys.executable, "-c", script, *[str(a) for a in args]],
        capture_output=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


class TestFaultEnsembleDeterminism:
    def test_byte_identical_across_hash_seeds(self):
        first = _run(FAULTS_SCRIPT, hashseed="0")
        second = _run(FAULTS_SCRIPT, hashseed="31337")
        assert first == second
        assert b"tuner.robust_runs" in first
        assert b"faults.plans_applied" in first


class TestSDCDeterminism:
    def test_byte_identical_across_hash_seeds(self):
        first = _run(SDC_SCRIPT, hashseed="0")
        second = _run(SDC_SCRIPT, hashseed="31337")
        assert first == second
        # Injection happened, events were recorded, protection held.
        assert b"SDCEvent" in first
        assert b"exact=True" in first
        assert b"exact=False" not in first
        assert b"sdc.flips" in first


class TestGridMapDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self):
        serial = _run(GRID_SCRIPT, 1, hashseed="0")
        parallel = _run(GRID_SCRIPT, 4, hashseed="17")
        assert serial == parallel
        assert b"points=12" in serial
        assert b"sim.runs" in serial
        assert b"engine.queue_wait_seconds" in serial

    def test_repeat_runs_identical(self):
        first = _run(GRID_SCRIPT, 4, hashseed="5")
        second = _run(GRID_SCRIPT, 4, hashseed="99")
        assert first == second


class TestStoreByteDeterminism:
    def test_identical_records_across_runs_and_workers(self, tmp_path):
        """Same canonical configs -> identical stored record bytes.

        Run one: a single worker serves the mix sequentially, so the
        32- and 64-chip searches warm-start from stored neighbors.
        Run two: four workers race, the duplicates coalesce in flight,
        and the searches mostly run cold — under a different hash
        seed. The stores must still match file for file, byte for
        byte.
        """
        serial = _run(STORE_SCRIPT, tmp_path / "a", 1, hashseed="0")
        parallel = _run(STORE_SCRIPT, tmp_path / "b", 4, hashseed="31337")
        assert serial == parallel
        assert len(serial.splitlines()) == 3  # one record per config


class TestJsonlFileDeterminism:
    def test_cli_metrics_file_stable(self, tmp_path):
        """Two `meshslice tune --metrics` runs write identical files."""
        paths = []
        for i, hashseed in enumerate(("0", "424242")):
            out = tmp_path / f"m{i}.jsonl"
            env = dict(os.environ)
            env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
            env["PYTHONHASHSEED"] = hashseed
            env.pop("REPRO_NO_METRICS", None)
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "tune", "gpt3-175b",
                    "--chips", "16", "--batch", "8", "--metrics", str(out),
                ],
                capture_output=True,
                env=env,
                timeout=600,
            )
            assert proc.returncode == 0, proc.stderr.decode()
            paths.append(out)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_exported_files_validate(self, tmp_path):
        from repro.obs.export import read_jsonl, write_jsonl
        from repro.obs.registry import MetricsRegistry

        reg = MetricsRegistry()
        reg.inc("a.count", 2.0, labels={"x": "1"})
        reg.set_gauge("a.level", 0.5)
        reg.observe("a.hist", 1e-3)
        records = [rec.to_record() for rec in reg.snapshot()]
        path = tmp_path / "out.jsonl"
        write_jsonl(records, str(path))
        assert read_jsonl(str(path)) == records
