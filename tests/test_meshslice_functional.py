"""Bit-exact verification of the MeshSlice GeMM algorithm (Section 3.1).

These tests pin the reproduction's central correctness claim: the
S-way sliced computation with partial AllGathers/ReduceScatters
computes exactly the same result as a local matmul, for every dataflow,
mesh shape, slice count, and block size that satisfies the divisibility
conditions of Section 3.1.2.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Dataflow,
    meshslice_gemm,
    meshslice_ls,
    meshslice_os,
    meshslice_rs,
)
from repro.mesh import Mesh2D

MESHES = [Mesh2D(1, 1), Mesh2D(2, 2), Mesh2D(4, 2), Mesh2D(2, 4), Mesh2D(3, 3)]


class TestMeshSliceOS:
    @pytest.mark.parametrize("mesh", MESHES, ids=str)
    @pytest.mark.parametrize("slices", [1, 2, 4])
    def test_matches_matmul(self, rng, mesh, slices):
        m, n = 24, 36
        k = mesh.rows * mesh.cols * slices * 12
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c = meshslice_os(a, b, mesh, slices, block=1)
        assert np.allclose(c, a @ b)

    @pytest.mark.parametrize("block", [1, 2, 4])
    def test_block_sizes(self, rng, block):
        mesh = Mesh2D(2, 2)
        slices = 3
        k = 2 * slices * block * 4
        a = rng.standard_normal((8, k))
        b = rng.standard_normal((k, 8))
        assert np.allclose(meshslice_os(a, b, mesh, slices, block), a @ b)

    def test_rejects_contraction_mismatch(self, rng):
        with pytest.raises(ValueError, match="contraction"):
            meshslice_os(
                rng.standard_normal((4, 6)),
                rng.standard_normal((8, 4)),
                Mesh2D(1, 1),
                slices=1,
            )

    def test_rejects_invalid_slice_count(self, rng):
        mesh = Mesh2D(2, 2)
        a = rng.standard_normal((4, 8))
        b = rng.standard_normal((8, 4))
        # K / P = 4, S = 3 does not divide it.
        with pytest.raises(ValueError):
            meshslice_os(a, b, mesh, slices=3, block=1)

    def test_integer_inputs_exact(self):
        mesh = Mesh2D(2, 2)
        a = np.arange(4 * 8).reshape(4, 8)
        b = np.arange(8 * 4).reshape(8, 4)
        assert np.array_equal(meshslice_os(a, b, mesh, slices=2, block=1), a @ b)


class TestMeshSliceLS:
    @pytest.mark.parametrize("mesh", MESHES, ids=str)
    @pytest.mark.parametrize("slices", [1, 2, 4])
    def test_matches_matmul_transposed(self, rng, mesh, slices):
        m, k = 36, 36  # divisible by every mesh dimension used here
        n = mesh.rows * mesh.cols * slices * 12
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((n, k))  # stored N x K
        c = meshslice_ls(a, b, mesh, slices, block=1)
        assert np.allclose(c, a @ b.T)

    def test_blocked(self, rng):
        mesh = Mesh2D(2, 2)
        n = 2 * 2 * 2 * 6  # P * S * B * groups
        a = rng.standard_normal((8, 12))
        b = rng.standard_normal((n, 12))
        assert np.allclose(
            meshslice_ls(a, b, mesh, slices=2, block=2), a @ b.T
        )

    def test_rejects_contraction_mismatch(self, rng):
        with pytest.raises(ValueError, match="contraction"):
            meshslice_ls(
                rng.standard_normal((4, 6)),
                rng.standard_normal((4, 7)),
                Mesh2D(1, 1),
                slices=1,
            )


class TestMeshSliceRS:
    @pytest.mark.parametrize("mesh", MESHES, ids=str)
    @pytest.mark.parametrize("slices", [1, 2, 4])
    def test_matches_matmul_transposed(self, rng, mesh, slices):
        k, n = 36, 36  # divisible by every mesh dimension used here
        m = mesh.rows * mesh.cols * slices * 12
        a = rng.standard_normal((k, m))  # stored K x M
        b = rng.standard_normal((k, n))
        c = meshslice_rs(a, b, mesh, slices, block=1)
        assert np.allclose(c, a.T @ b)

    def test_rejects_contraction_mismatch(self, rng):
        with pytest.raises(ValueError, match="contraction"):
            meshslice_rs(
                rng.standard_normal((6, 4)),
                rng.standard_normal((7, 4)),
                Mesh2D(1, 1),
                slices=1,
            )


class TestDispatch:
    def test_dispatches_each_dataflow(self, rng):
        mesh = Mesh2D(2, 2)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        assert np.allclose(
            meshslice_gemm(a, b, mesh, Dataflow.OS, 2), a @ b
        )
        assert np.allclose(
            meshslice_gemm(a, b, mesh, Dataflow.LS, 2), a @ b.T
        )
        assert np.allclose(
            meshslice_gemm(a, b, mesh, Dataflow.RS, 2), a.T @ b
        )


class TestSliceCollectiveEquivalence:
    """Section 3.1.1: the union of the S sliced partial products equals
    the full product, and S = 1 degenerates to Collective 2D GeMM."""

    def test_s1_equals_collective(self, rng):
        from repro.algorithms import GeMMConfig, get_algorithm
        from repro.core import GeMMShape

        mesh = Mesh2D(2, 4)
        a = rng.standard_normal((8, 16))
        b = rng.standard_normal((16, 8))
        collective = get_algorithm("collective").functional(
            a, b, GeMMConfig(GeMMShape(8, 8, 16), mesh, Dataflow.OS)
        )
        sliced = meshslice_os(a, b, mesh, slices=1, block=1)
        assert np.allclose(collective, sliced)

    @settings(max_examples=15, deadline=None)
    @given(
        rows=st.integers(1, 3),
        cols=st.integers(1, 3),
        slices=st.sampled_from([1, 2, 3]),
        seed=st.integers(0, 10_000),
    )
    def test_property_os(self, rows, cols, slices, seed):
        rng = np.random.default_rng(seed)
        mesh = Mesh2D(rows, cols)
        lcm = rows * cols  # any common multiple works
        k = lcm * slices * 2
        m, n = rows * 3, cols * 5
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        assert np.allclose(meshslice_os(a, b, mesh, slices, block=1), a @ b)
