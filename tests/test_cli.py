"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, normalize_argv, run_experiment


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "table3" in out
        assert "ablation-2.5d" in out
        assert "ablation-faults" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figure-nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_ablation(self, capsys):
        assert main(["ablation-2.5d"]) == 0
        out = capsys.readouterr().out
        assert "MeshSlice+DP" in out
        assert "done in" in out

    def test_run_subcommand(self, capsys):
        assert main(["run", "ablation-2.5d"]) == 0
        out = capsys.readouterr().out
        assert "MeshSlice+DP" in out

    def test_run_experiment_returns_report(self):
        report = run_experiment("ablation-2.5d")
        assert "2.5D GeMM" in report

    def test_run_experiment_unknown(self):
        with pytest.raises(KeyError):
            run_experiment("nope")

    def test_parser(self):
        args = build_parser().parse_args(["run", "fig9"])
        assert args.command == "run"
        assert args.experiments == ["fig9"]

    def test_parser_jobs_flag(self):
        args = build_parser().parse_args(["run", "fig9", "--jobs", "4"])
        assert args.jobs == 4

    def test_normalize_legacy_experiment(self):
        assert normalize_argv(["fig9"]) == ["run", "fig9"]
        assert normalize_argv(["fig9", "--jobs", "8"]) == [
            "run", "fig9", "--jobs", "8"
        ]
        assert normalize_argv(["all"]) == ["run", "all"]

    def test_normalize_keeps_subcommands(self):
        assert normalize_argv(["run", "fig9"]) == ["run", "fig9"]
        assert normalize_argv(["tune", "gpt3-175b"]) == ["tune", "gpt3-175b"]
        assert normalize_argv(["list"]) == ["list"]
        assert normalize_argv([]) == []

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage: meshslice" in capsys.readouterr().err

    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt3-175b" in out and "llama2-70b" in out

    def test_presets_command(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "tpuv4-sim" in out and "gpu-logical-mesh" in out

    def test_tune_command(self, capsys):
        assert main(["tune", "llama2-70b", "--chips", "16"]) == 0
        out = capsys.readouterr().out
        assert "chosen mesh" in out

    def test_tune_requires_model(self, capsys):
        assert main(["tune"]) == 2

    def test_tune_unknown_model(self, capsys):
        assert main(["tune", "gpt5", "--chips", "16"]) == 2


class TestFaultsCommand:
    def test_requires_model(self, capsys):
        assert main(["faults"]) == 2
        assert "usage: meshslice faults" in capsys.readouterr().err

    def test_unknown_model(self, capsys):
        assert main(["faults", "gpt5", "--chips", "16"]) == 2

    def test_robust_tuning_report(self, capsys):
        assert main([
            "faults", "gpt3-175b", "--chips", "16",
            "--stragglers", "2", "--straggler-slowdown", "2.0",
            "--ensemble", "4", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "robust mesh" in out
        assert "p95" in out
        assert "inflation" in out

    def test_rejects_bad_spec(self, capsys):
        assert main([
            "faults", "gpt3-175b", "--chips", "16",
            "--straggler-slowdown", "0.5",
        ]) == 2
        assert capsys.readouterr().err.strip()


class TestFaultsFlagValidation:
    @pytest.mark.parametrize("flag,value", [
        ("--outage-rate", "2.0"),
        ("--outage-rate", "-0.1"),
        ("--straggler-slowdown", "0.5"),
        ("--link-slowdown", "0.9"),
        ("--stragglers", "-1"),
        ("--degraded-links", "-2"),
        ("--jitter", "-1"),
        ("--ensemble", "0"),
    ])
    def test_bad_flag_exits_2_naming_the_flag(self, capsys, flag, value):
        assert main([
            "faults", "gpt3-175b", "--chips", "16", flag, value,
        ]) == 2
        err = capsys.readouterr().err.strip()
        assert err.count("\n") == 0, "diagnostic must be one line"
        assert flag in err


class TestRecoveryCommand:
    def test_report(self, capsys):
        assert main(["recovery", "gpt3-175b", "--chips", "16"]) == 0
        out = capsys.readouterr().out
        assert "degraded" in out
        assert "Young/Daly checkpoint interval" in out
        assert "restart" in out and "degrade" in out
        assert "best policy" in out

    def test_requires_model(self, capsys):
        assert main(["recovery"]) == 2
        assert "usage: meshslice recovery" in capsys.readouterr().err

    def test_unknown_model(self, capsys):
        assert main(["recovery", "gpt5", "--chips", "16"]) == 2

    @pytest.mark.parametrize("flag,value", [
        ("--chip-mtbf-hours", "-5"),
        ("--chip-mtbf-hours", "0"),
        ("--repair-minutes", "-1"),
        ("--checkpoint-seconds", "0"),
        ("--restart-seconds", "-3"),
    ])
    def test_bad_flag_exits_2_naming_the_flag(self, capsys, flag, value):
        assert main([
            "recovery", "gpt3-175b", "--chips", "16", flag, value,
        ]) == 2
        err = capsys.readouterr().err.strip()
        assert err.count("\n") == 0, "diagnostic must be one line"
        assert flag in err

    def test_too_few_chips(self, capsys):
        assert main(["recovery", "gpt3-175b", "--chips", "2"]) == 2
        assert "--chips" in capsys.readouterr().err

    def test_normalize_keeps_recovery(self):
        assert normalize_argv(["recovery", "gpt3-175b"]) == [
            "recovery", "gpt3-175b"
        ]


class TestSdcCommand:
    def test_report(self, capsys):
        assert main([
            "sdc", "--rate", "0.05", "--mesh", "2x2", "--trials", "2",
            "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "silent data corruption" in out
        assert "escapes (bare)" in out and "escapes (abft)" in out
        assert "abft overhead" in out
        assert "2x2" in out

    @pytest.mark.parametrize("flag,value", [
        ("--rate", "5"),
        ("--rate", "-0.1"),
        ("--trials", "0"),
    ])
    def test_bad_flag_exits_2_naming_the_flag(self, capsys, flag, value):
        assert main(["sdc", flag, value]) == 2
        err = capsys.readouterr().err.strip()
        assert err.count("\n") == 0, "diagnostic must be one line"
        assert flag in err

    def test_bad_mesh_spec(self, capsys):
        assert main(["sdc", "--mesh", "3y3", "--trials", "1"]) == 2
        assert "3y3" in capsys.readouterr().err

    def test_unknown_hw_preset(self, capsys):
        assert main([
            "sdc", "--hw", "abacus", "--trials", "1", "--mesh", "2x2",
        ]) == 2
        assert capsys.readouterr().err.strip()

    def test_unknown_algorithm_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sdc", "--algorithm", "cannon"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_normalize_keeps_sdc(self):
        assert normalize_argv(["sdc", "--rate", "0.01"]) == [
            "sdc", "--rate", "0.01"
        ]


class TestSdcFlagValidation:
    @pytest.mark.parametrize("flag,value", [
        ("--jobs", "0"),
        ("--jobs", "-2"),
        ("--seed", "-1"),
    ])
    def test_bad_flag_exits_2_naming_the_flag(self, capsys, flag, value):
        assert main(["sdc", flag, value]) == 2
        err = capsys.readouterr().err.strip()
        assert err.count("\n") == 0, "diagnostic must be one line"
        assert flag in err


class TestServeFlagValidation:
    @pytest.mark.parametrize("flag,value", [
        ("--store-max-records", "0"),
        ("--store-max-records", "-1"),
        ("--store-max-bytes", "0"),
        ("--workers", "0"),
        ("--repeat", "0"),
    ])
    def test_bad_flag_exits_2_naming_the_flag(
        self, capsys, tmp_path, flag, value
    ):
        assert main([
            "serve", "--store", str(tmp_path / "plans"), flag, value,
        ]) == 2
        err = capsys.readouterr().err.strip()
        assert err.count("\n") == 0, "diagnostic must be one line"
        assert flag in err

    def test_store_bounds_require_store(self, capsys):
        assert main(["serve", "--store-max-records", "5"]) == 2
        err = capsys.readouterr().err.strip()
        assert "--store" in err


class TestCampaignCommand:
    def test_run_status_report_resume(self, capsys, tmp_path):
        store = str(tmp_path / "sweeps")
        assert main([
            "campaign", "run", "ablation-2.5d", "--store", store,
            "--jobs", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "campaign ablation-2.5d:" in out
        assert "ran 2, ok 2, failed 0" in out

        assert main(["campaign", "status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "campaign ablation-2.5d: 2 stored (2 ok, 0 failed)" in out
        assert "versions:" in out

        assert main([
            "campaign", "report", "ablation-2.5d", "--store", store,
        ]) == 0
        out = capsys.readouterr().out
        assert "2.5D GeMM" in out

        assert main([
            "campaign", "resume", "ablation-2.5d", "--store", store,
            "--jobs", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "(2 already stored); ran 0" in out

    @pytest.mark.parametrize("flag,value", [
        ("--jobs", "0"),
        ("--jobs", "-1"),
        ("--retries", "-1"),
        ("--backoff", "-0.5"),
    ])
    def test_bad_flag_exits_2_naming_the_flag(
        self, capsys, tmp_path, flag, value
    ):
        assert main([
            "campaign", "run", "ablation-2.5d",
            "--store", str(tmp_path / "sweeps"), flag, value,
        ]) == 2
        err = capsys.readouterr().err.strip()
        assert err.count("\n") == 0, "diagnostic must be one line"
        assert flag in err

    def test_unknown_campaign_names_the_options(self, capsys, tmp_path):
        assert main([
            "campaign", "run", "nope", "--store", str(tmp_path / "s"),
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown campaign 'nope'" in err
        assert "fig9" in err

    def test_report_without_store_file(self, capsys, tmp_path):
        assert main([
            "campaign", "report", "fig9", "--store", str(tmp_path / "s"),
        ]) == 2
        assert "no store file for 'fig9'" in capsys.readouterr().err

    def test_status_of_empty_store(self, capsys, tmp_path):
        assert main([
            "campaign", "status", "--store", str(tmp_path / "s"),
        ]) == 2
        assert "no campaigns in" in capsys.readouterr().err

    def test_bare_campaign_prints_usage(self, capsys):
        assert main(["campaign"]) == 2
        assert "usage: meshslice campaign" in capsys.readouterr().err

    def test_normalize_keeps_campaign(self):
        assert normalize_argv(["campaign", "status", "--store", "x"]) == [
            "campaign", "status", "--store", "x"
        ]
