"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, run_experiment


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "table3" in out
        assert "ablation-2.5d" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figure-nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_ablation(self, capsys):
        assert main(["ablation-2.5d"]) == 0
        out = capsys.readouterr().out
        assert "MeshSlice+DP" in out
        assert "done in" in out

    def test_run_experiment_returns_report(self):
        report = run_experiment("ablation-2.5d")
        assert "2.5D GeMM" in report

    def test_run_experiment_unknown(self):
        with pytest.raises(KeyError):
            run_experiment("nope")

    def test_parser(self):
        args = build_parser().parse_args(["fig9"])
        assert args.command == "fig9"

    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt3-175b" in out and "llama2-70b" in out

    def test_presets_command(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "tpuv4-sim" in out and "gpu-logical-mesh" in out

    def test_tune_command(self, capsys):
        assert main(["tune", "llama2-70b", "--chips", "16"]) == 0
        out = capsys.readouterr().out
        assert "chosen mesh" in out

    def test_tune_requires_model(self, capsys):
        assert main(["tune"]) == 2

    def test_tune_unknown_model(self, capsys):
        assert main(["tune", "gpt5", "--chips", "16"]) == 2
