"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, normalize_argv, run_experiment


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "table3" in out
        assert "ablation-2.5d" in out
        assert "ablation-faults" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figure-nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_ablation(self, capsys):
        assert main(["ablation-2.5d"]) == 0
        out = capsys.readouterr().out
        assert "MeshSlice+DP" in out
        assert "done in" in out

    def test_run_subcommand(self, capsys):
        assert main(["run", "ablation-2.5d"]) == 0
        out = capsys.readouterr().out
        assert "MeshSlice+DP" in out

    def test_run_experiment_returns_report(self):
        report = run_experiment("ablation-2.5d")
        assert "2.5D GeMM" in report

    def test_run_experiment_unknown(self):
        with pytest.raises(KeyError):
            run_experiment("nope")

    def test_parser(self):
        args = build_parser().parse_args(["run", "fig9"])
        assert args.command == "run"
        assert args.experiments == ["fig9"]

    def test_parser_jobs_flag(self):
        args = build_parser().parse_args(["run", "fig9", "--jobs", "4"])
        assert args.jobs == 4

    def test_normalize_legacy_experiment(self):
        assert normalize_argv(["fig9"]) == ["run", "fig9"]
        assert normalize_argv(["fig9", "--jobs", "8"]) == [
            "run", "fig9", "--jobs", "8"
        ]
        assert normalize_argv(["all"]) == ["run", "all"]

    def test_normalize_keeps_subcommands(self):
        assert normalize_argv(["run", "fig9"]) == ["run", "fig9"]
        assert normalize_argv(["tune", "gpt3-175b"]) == ["tune", "gpt3-175b"]
        assert normalize_argv(["list"]) == ["list"]
        assert normalize_argv([]) == []

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage: meshslice" in capsys.readouterr().err

    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt3-175b" in out and "llama2-70b" in out

    def test_presets_command(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "tpuv4-sim" in out and "gpu-logical-mesh" in out

    def test_tune_command(self, capsys):
        assert main(["tune", "llama2-70b", "--chips", "16"]) == 0
        out = capsys.readouterr().out
        assert "chosen mesh" in out

    def test_tune_requires_model(self, capsys):
        assert main(["tune"]) == 2

    def test_tune_unknown_model(self, capsys):
        assert main(["tune", "gpt5", "--chips", "16"]) == 2


class TestFaultsCommand:
    def test_requires_model(self, capsys):
        assert main(["faults"]) == 2
        assert "usage: meshslice faults" in capsys.readouterr().err

    def test_unknown_model(self, capsys):
        assert main(["faults", "gpt5", "--chips", "16"]) == 2

    def test_robust_tuning_report(self, capsys):
        assert main([
            "faults", "gpt3-175b", "--chips", "16",
            "--stragglers", "2", "--straggler-slowdown", "2.0",
            "--ensemble", "4", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "robust mesh" in out
        assert "p95" in out
        assert "inflation" in out

    def test_rejects_bad_spec(self, capsys):
        assert main([
            "faults", "gpt3-175b", "--chips", "16",
            "--straggler-slowdown", "0.5",
        ]) == 2
        assert capsys.readouterr().err.strip()
