"""Campaign queries and the experiment spec registry."""

import pickle

import pytest

from repro import __version__
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CampaignStore,
    campaign_names,
    campaign_specs,
    counter_history,
    cross_campaign_totals,
    get_campaign,
    make_record,
    point_key,
    ratio_history,
    report,
    rows,
    status,
)


def _metric(name, value, kind="counter"):
    return {"type": kind, "name": name, "value": value}


def _append_ok(store, name, point, result, metrics=()):
    key = point_key(name, point)
    store.append(
        name,
        make_record(name, key, point, "ok", result=result, metrics=metrics),
    )
    return key


class TestRegistry:
    def test_every_experiment_publishes_a_spec(self):
        from repro.experiments import EXPERIMENTS

        specs = campaign_specs()
        assert set(specs) == set(EXPERIMENTS)
        for name, spec in specs.items():
            assert spec.name == name

    def test_specs_are_runnable_contracts(self):
        for spec in campaign_specs().values():
            points = spec.points()
            assert len(points) > 0
            # The unit of pool distribution must survive pickling.
            pickle.dumps(spec.point)

    def test_campaign_names_sorted(self):
        names = campaign_names()
        assert names == sorted(names)
        assert "fig9" in names and "ablation-sdc" in names

    def test_get_campaign_unknown_names_the_options(self):
        with pytest.raises(KeyError, match="known:.*fig9"):
            get_campaign("nope")


class TestStatus:
    def test_counts_and_versions(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        _append_ok(store, "demo", 1, 10)
        key = point_key("demo", 2)
        store.append(
            "demo",
            make_record(
                "demo", key, 2, "failed", error=("Boom", "nope")
            ),
        )
        st = status(store, "demo")
        assert (st.stored, st.ok, st.failed) == (2, 1, 1)
        assert st.failed_keys == (key,)
        assert st.versions == (__version__,)
        text = st.render()
        assert "campaign demo: 2 stored (1 ok, 1 failed)" in text
        assert f"failed: {key}" in text
        assert __version__ in text


class TestRowsAndReport:
    def test_report_matches_direct_main(self, tmp_path):
        from repro.experiments import ablation_25d

        spec = get_campaign("ablation-2.5d")
        store = CampaignStore(str(tmp_path))
        summary = CampaignRunner(store, spec.name, spec.point,
                                 jobs=1).run(spec.points())
        assert summary.complete and summary.failed == 0
        assert report(store, spec.name, spec) == ablation_25d.main()

    def test_failed_records_contribute_no_rows(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        spec = CampaignSpec(
            name="demo",
            points=lambda: [1, 2],
            point=lambda p: p,
            render=lambda rs: str(rs),
            flatten=False,
        )
        _append_ok(store, "demo", 1, 11)
        store.append(
            "demo",
            make_record(
                "demo", point_key("demo", 2), 2, "failed",
                error=("Boom", "x"),
            ),
        )
        assert rows(store, "demo", spec) == [11]

    def test_flatten_concatenates_row_lists(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        spec = CampaignSpec(
            name="demo",
            points=lambda: [1],
            point=lambda p: [p],
            render=lambda rs: str(rs),
            flatten=True,
        )
        _append_ok(store, "demo", 1, [11, 12])
        _append_ok(store, "demo", 2, [13])
        assert rows(store, "demo", spec) == [11, 12, 13]


class TestMetricHistory:
    def test_counter_history_in_store_order(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        k1 = _append_ok(store, "demo", 1, 0,
                        metrics=[_metric("sim.runs", 3.0)])
        k2 = _append_ok(store, "demo", 2, 0, metrics=[
            _metric("sim.runs", 2.0),
            _metric("sim.runs", 1.0),  # labeled series sum together
            _metric("other", 9.0),
            _metric("sim.runs", 7.0, kind="histogram"),
        ])
        assert counter_history(store, "demo", "sim.runs") == [
            (k1, 3.0), (k2, 3.0)
        ]

    def test_ratio_history_handles_zero_totals(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        k1 = _append_ok(store, "demo", 1, 0, metrics=[
            _metric("hits", 3.0), _metric("misses", 1.0),
        ])
        k2 = _append_ok(store, "demo", 2, 0)
        assert ratio_history(store, "demo", "hits", "misses") == [
            (k1, 0.75), (k2, 0.0)
        ]

    def test_cross_campaign_totals_defaults_to_all(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        _append_ok(store, "one", 1, 0, metrics=[_metric("sim.runs", 2.0)])
        _append_ok(store, "one", 2, 0, metrics=[_metric("sim.runs", 3.0)])
        _append_ok(store, "two", 1, 0, metrics=[_metric("sim.runs", 1.0)])
        assert cross_campaign_totals(store, "sim.runs") == {
            "one": 5.0, "two": 1.0
        }
        assert cross_campaign_totals(store, "sim.runs", names=["two"]) == {
            "two": 1.0
        }
