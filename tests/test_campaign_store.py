"""The campaign record store: codec, schema, appends, loads, repair."""

import json
import os

import numpy as np
import pytest

from repro import Dataflow, GeMMShape, Mesh2D, __version__
from repro.campaign import (
    CampaignStore,
    SCHEMA_VERSION,
    canonical_json,
    decode_value,
    encode_record,
    encode_value,
    make_record,
    point_key,
    validate_record,
)
from repro.campaign.records import record_metrics
from repro.obs.registry import MetricsRegistry, registry


def _record(key="k", status="ok", **overrides):
    base = dict(
        campaign="demo",
        key=key,
        point=(1, 2),
        status=status,
        result=[1.5] if status == "ok" else None,
        error=("Boom", "it broke") if status == "failed" else None,
    )
    base.update(overrides)
    return make_record(**base)


class TestCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -3, 2.5, "text",
        [1, [2, 3]], {"a": 1, "b": {"c": None}},
    ])
    def test_json_values_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_tuple_round_trip_preserves_type(self):
        value = (1, (2, "x"), [3, (4,)])
        out = decode_value(encode_value(value))
        assert out == value
        assert isinstance(out, tuple) and isinstance(out[1], tuple)
        assert isinstance(out[2], list) and isinstance(out[2][1], tuple)

    def test_enum_round_trip(self):
        out = decode_value(encode_value(Dataflow.OS))
        assert out is Dataflow.OS

    def test_dataclass_round_trip(self):
        mesh = Mesh2D(4, 8)
        shape = GeMMShape(m=64, n=32, k=16)
        out = decode_value(encode_value((mesh, shape)))
        assert out == (mesh, shape)
        assert isinstance(out[0], Mesh2D) and isinstance(out[1], GeMMShape)

    def test_numpy_scalars_coerce_to_python(self):
        encoded = encode_value([np.int64(3), np.float64(2.5)])
        assert encoded == [3, 2.5]
        assert type(encoded[0]) is int and type(encoded[1]) is float

    def test_marker_collision_rejected(self):
        with pytest.raises(TypeError):
            encode_value({"__tuple__": [1]})

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(TypeError):
            encode_value({1: "a"})

    def test_unencodable_value_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())

    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_point_key_is_stable_and_namespaced(self):
        key = point_key("fig9", (1, 2))
        assert key == point_key("fig9", (1, 2))
        assert len(key) == 64 and int(key, 16) >= 0
        assert key != point_key("fig10", (1, 2))
        assert key != point_key("fig9", (2, 1))


class TestRecords:
    def test_make_record_shape(self):
        record = _record()
        assert record["schema"] == SCHEMA_VERSION
        assert record["version"] == __version__
        assert record["status"] == "ok" and record["error"] is None
        assert validate_record(record) is record

    def test_failed_record_carries_structured_error(self):
        record = _record(status="failed")
        assert record["result"] is None
        assert record["error"] == {"type": "Boom", "message": "it broke"}

    def test_failed_without_error_rejected(self):
        with pytest.raises(ValueError):
            make_record("demo", "k", 1, "failed")

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError):
            make_record("demo", "k", 1, "running")

    @pytest.mark.parametrize("mutation", [
        {"schema": 99},
        {"metrics": "nope"},
        {"status": "meh"},
        {"error": {"type": 1, "message": "x"}},
    ])
    def test_validate_rejects_malformed(self, mutation):
        record = dict(_record())
        record.update(mutation)
        with pytest.raises(ValueError):
            validate_record(record)

    def test_encode_record_is_canonical_jsonl(self):
        line = encode_record(_record())
        assert line.endswith("\n") and line.count("\n") == 1
        parsed = json.loads(line)
        assert line == json.dumps(
            parsed, sort_keys=True, separators=(",", ":")
        ) + "\n"

    def test_record_metrics_keeps_only_deterministic_series(self):
        reg = MetricsRegistry()
        reg.inc("sim.runs", 2.0)
        reg.observe("engine.queue_wait_seconds", 1e-3)
        reg.set_gauge("service.queue.depth", 4.0)
        reg.inc("campaign.retries")
        reg.observe("service.latency_ms", 12.0)
        kept = record_metrics(reg.snapshot())
        names = [m["name"] for m in kept]
        assert "sim.runs" in names
        assert "engine.queue_wait_seconds" in names
        assert "service.queue.depth" not in names  # gauge
        assert "campaign.retries" not in names  # campaign bookkeeping
        assert "service.latency_ms" not in names  # wall clock


class TestCampaignStore:
    def test_append_load_round_trip(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        for key in ("a", "b"):
            store.append("demo", _record(key=key))
        loaded = store.load("demo")
        assert list(loaded) == [
            _record(key="a")["key"], _record(key="b")["key"]
        ]
        assert loaded["a"]["result"] == [1.5]
        assert store.campaigns() == ["demo"]

    def test_last_record_wins_in_first_occurrence_order(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.append("demo", _record(key="a", status="failed"))
        store.append("demo", _record(key="b"))
        store.append("demo", _record(key="a"))  # supersedes the failure
        loaded = store.load("demo")
        assert list(loaded) == ["a", "b"]
        assert loaded["a"]["status"] == "ok"

    @pytest.mark.parametrize("name", ["", "a/b", "a b", "a\nb", "../up"])
    def test_invalid_names_rejected(self, tmp_path, name):
        store = CampaignStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.path_for(name)

    def test_corrupt_line_is_skipped_never_fatal(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.append("demo", _record(key="a"))
        with open(store.path_for("demo"), "a") as handle:
            handle.write('{"torn": \n')
        store.append("demo", _record(key="b"))
        before = registry().counter_value("campaign.store.corrupt")
        loaded = store.load("demo")
        assert list(loaded) == ["a", "b"]
        assert registry().counter_value("campaign.store.corrupt") == before + 1

    def test_repair_is_a_noop_on_a_healthy_file(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.append("demo", _record(key="a"))
        with open(store.path_for("demo"), "rb") as handle:
            original = handle.read()
        report = store.repair("demo")
        assert report.kept == 1 and report.quarantined == 0
        with open(store.path_for("demo"), "rb") as handle:
            assert handle.read() == original
        assert not os.path.exists(store.quarantine_path("demo"))

    def test_repair_quarantines_torn_tail(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.append("demo", _record(key="a"))
        with open(store.path_for("demo"), "rb") as handle:
            healthy = handle.read()
        with open(store.path_for("demo"), "ab") as handle:
            handle.write(b'{"half": ')  # SIGKILL mid-append
        report = store.repair("demo")
        assert report.kept == 1 and report.quarantined == 1
        with open(store.path_for("demo"), "rb") as handle:
            assert handle.read() == healthy  # byte-identical restore
        with open(store.quarantine_path("demo"), "rb") as handle:
            assert b'{"half": ' in handle.read()

    def test_repair_restores_newline_of_valid_unterminated_tail(
        self, tmp_path
    ):
        store = CampaignStore(str(tmp_path))
        store.append("demo", _record(key="a"))
        with open(store.path_for("demo"), "rb") as handle:
            healthy = handle.read()
        # Kill landed after the bytes but before the terminator made
        # it out: strip the trailing newline.
        with open(store.path_for("demo"), "wb") as handle:
            handle.write(healthy[:-1])
        report = store.repair("demo")
        assert report.kept == 1 and report.quarantined == 0
        with open(store.path_for("demo"), "rb") as handle:
            assert handle.read() == healthy

    def test_missing_file_loads_empty(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        assert store.load("demo") == {}
        assert store.repair("demo").kept == 0
        assert store.campaigns() == []


class TestStoreRecordEncoding:
    def test_dataclass_points_survive_the_store(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        point = (Mesh2D(2, 4), Dataflow.LS, GeMMShape(m=8, n=8, k=8))
        key = point_key("demo", point)
        store.append("demo", make_record("demo", key, point, "ok", result=3))
        loaded = store.load("demo")[key]
        assert decode_value(loaded["point"]) == point
