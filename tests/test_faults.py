"""Tests for the fault & variability injection subsystem."""

import dataclasses

import pytest

from repro.algorithms import GeMMConfig, get_algorithm
from repro.core import Dataflow, GeMMShape
from repro.faults import DEFAULT_RETRY_TIMEOUT, NULL_PLAN, FaultPlan, FaultSpec
from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.sim import LINK_H, LINK_V, ProgramBuilder, simulate


def _program(hw=TPUV4):
    builder = ProgramBuilder(hw)
    ag = builder.allgather("ag", 4, 50e6, LINK_H)
    g = builder.gemm("g", 2048, 2048, 2048, deps=[ag])
    builder.reducescatter("rds", 4, 50e6, LINK_V, deps=[g])
    return builder.build()


def _pass_program(hw=TPUV4):
    cfg = GeMMConfig(
        GeMMShape(8192, 8192, 8192), Mesh2D(4, 4), Dataflow.OS, slices=4
    )
    return get_algorithm("meshslice").build_program(cfg, hw)


class TestFaultPlanValidation:
    def test_null_plan_is_null(self):
        assert NULL_PLAN.is_null
        assert FaultPlan().is_null

    def test_unit_factors_are_null(self):
        plan = FaultPlan(link_degradation=(("link_h", 1.0),))
        assert plan.is_null

    def test_rejects_speedups(self):
        with pytest.raises(ValueError):
            FaultPlan(compute_slowdown=0.9)
        with pytest.raises(ValueError):
            FaultPlan(link_degradation=(("link_h", 0.5),))

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(outage_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(launch_jitter=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(outage_penalty=-1.0)

    def test_hashable(self):
        plan = FaultPlan(compute_slowdown=1.5, seed=3)
        assert hash(plan) == hash(FaultPlan(compute_slowdown=1.5, seed=3))


class TestNullPlanBitIdentical:
    def test_apply_returns_same_object(self):
        program = _program()
        assert NULL_PLAN.apply(program) is program

    def test_spans_bit_identical(self):
        """Pins the tentpole guarantee: null plan == unfaulted run."""
        program = _pass_program()
        clean = program.run()
        faulted = program.run(NULL_PLAN)
        assert clean == faulted

    def test_simulate_bit_identical(self):
        program = _program()
        clean = simulate(program, TPUV4)
        nulled = simulate(program, TPUV4, faults=NULL_PLAN)
        assert clean.makespan == nulled.makespan
        assert clean.spans == nulled.spans


class TestPerturbations:
    def test_compute_slowdown_stretches_compute_only(self):
        program = _program()
        plan = FaultPlan(compute_slowdown=2.0)
        faulted = plan.apply(program)
        assert faulted is not program
        for before, after in zip(program.activities, faulted.activities):
            if before.kind in ("compute", "slice") and before.duration > 0:
                assert after.duration == pytest.approx(2 * before.duration)
            else:
                assert after.duration == before.duration

    def test_link_degradation_hits_matching_direction(self):
        program = _program()
        plan = FaultPlan(link_degradation=((LINK_H, 3.0),))
        faulted = plan.apply(program)
        for before, after in zip(program.activities, faulted.activities):
            if before.kind != "comm":
                assert after.duration == before.duration
                continue
            transfer = before.meta.get("transfer", 0.0)
            if LINK_H in before.exclusive and transfer > 0:
                extra = after.duration - before.duration
                assert extra == pytest.approx(2 * transfer)
                assert after.meta["transfer"] == pytest.approx(3 * transfer)
            else:
                assert after.duration == before.duration

    def test_shared_demand_units_conserved(self):
        program = _program()
        plan = FaultPlan(compute_slowdown=2.0, link_degradation=((LINK_H, 2.0),))
        faulted = plan.apply(program)
        for before, after in zip(program.activities, faulted.activities):
            for resource, demand in before.shared.items():
                assert before.duration * demand == pytest.approx(
                    after.duration * after.shared[resource]
                )

    def test_outage_adds_sync_and_retransmit(self):
        program = _program()
        plan = FaultPlan(outage_rate=1.0, outage_penalty=1e-3, seed=5)
        faulted = plan.apply(program)
        retried = [
            (before, after)
            for before, after in zip(program.activities, faulted.activities)
            if after.meta.get("retries")
        ]
        assert retried
        for before, after in retried:
            transfer = before.meta.get("transfer", 0.0)
            sync = before.meta.get("sync", 0.0)
            assert after.meta["sync"] == pytest.approx(sync + 1e-3)
            assert after.meta["transfer"] == pytest.approx(2 * transfer)
            assert after.duration == pytest.approx(
                before.duration + 1e-3 + transfer
            )

    def test_jitter_deterministic_per_seed(self):
        program = _program()
        plan = FaultPlan(launch_jitter=5e-6, seed=11)
        a = plan.apply(program).run()
        b = plan.apply(program).run()
        assert a == b
        other = FaultPlan(launch_jitter=5e-6, seed=12).apply(program).run()
        assert a != other

    def test_input_program_never_mutated(self):
        program = _program()
        baseline = [
            (act.duration, dict(act.shared), dict(act.meta))
            for act in program.activities
        ]
        FaultPlan(
            compute_slowdown=2.0,
            link_degradation=((LINK_H, 2.0), (LINK_V, 1.5)),
            launch_jitter=1e-6,
            outage_rate=1.0,
            outage_penalty=1e-3,
        ).apply(program)
        for act, (duration, shared, meta) in zip(program.activities, baseline):
            assert act.duration == duration
            assert act.shared == shared
            assert act.meta == meta

    def test_faulted_makespan_grows(self):
        program = _pass_program()
        plan = FaultPlan(compute_slowdown=1.5, link_degradation=((LINK_H, 2.0),))
        clean = simulate(program, TPUV4)
        faulted = simulate(program, TPUV4, faults=plan)
        assert faulted.makespan > clean.makespan
        # FLOPs are unchanged, so utilization reports the degradation.
        assert faulted.flop_utilization() < clean.flop_utilization()

    def test_plan_recorded_in_program_meta(self):
        program = _program()
        plan = FaultPlan(compute_slowdown=2.0)
        assert plan.apply(program).meta["fault_plan"] is plan


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(stragglers=-1)
        with pytest.raises(ValueError):
            FaultSpec(straggler_slowdown=0.9)
        with pytest.raises(ValueError):
            FaultSpec(link_slowdown=0.5)
        with pytest.raises(ValueError):
            FaultSpec(outage_rate=2.0)

    def test_null_spec_samples_null_plans(self):
        spec = FaultSpec()
        assert spec.is_null
        plan = spec.sample(16)
        assert plan.is_null

    def test_sample_deterministic(self):
        spec = FaultSpec(
            stragglers=2, straggler_slowdown=2.0,
            degraded_links=3, link_slowdown=3.0, seed=9,
        )
        assert spec.sample(16) == spec.sample(16)
        assert spec.sample(16) != dataclasses.replace(spec, seed=10).sample(16)

    def test_sample_bounds(self):
        spec = FaultSpec(
            stragglers=4, straggler_slowdown=1.5,
            degraded_links=6, link_slowdown=2.0, seed=1,
        )
        plan = spec.sample(64)
        assert 1.0 <= plan.compute_slowdown < 1.5
        assert plan.link_degradation
        for link, factor in plan.link_degradation:
            assert link in ("link_h", "link_v")
            assert 1.0 <= factor < 2.0

    def test_outage_penalty_defaults(self):
        spec = FaultSpec(outage_rate=0.1)
        assert spec.sample(16).outage_penalty == DEFAULT_RETRY_TIMEOUT
        assert (
            spec.sample(16, TPUV4).outage_penalty == TPUV4.link_retry_timeout
        )
        explicit = FaultSpec(outage_rate=0.1, outage_penalty=2e-3)
        assert explicit.sample(16, TPUV4).outage_penalty == 2e-3

    def test_ensemble_reproducible_and_distinct(self):
        spec = FaultSpec(stragglers=2, straggler_slowdown=2.0, seed=4)
        plans = spec.ensemble(16, TPUV4, count=5)
        assert plans == spec.ensemble(16, TPUV4, count=5)
        assert len(plans) == 5
        assert len({p.compute_slowdown for p in plans}) > 1

    def test_ensemble_rejects_empty(self):
        with pytest.raises(ValueError):
            FaultSpec().ensemble(16, count=0)

    def test_sample_rejects_no_chips(self):
        with pytest.raises(ValueError):
            FaultSpec().sample(0)


class TestFaultedPassCache:
    def test_null_plan_shares_clean_cache_entry(self, hw):
        from repro.perf.pipeline import faulted_pass, simulated_pass

        cfg = GeMMConfig(
            GeMMShape(4096, 4096, 4096), Mesh2D(2, 2), Dataflow.OS, slices=2
        )
        clean = simulated_pass("meshslice", cfg, hw)
        assert faulted_pass("meshslice", cfg, hw, NULL_PLAN) is clean

    def test_faulted_result_memoized(self, hw):
        from repro.perf.pipeline import faulted_pass

        cfg = GeMMConfig(
            GeMMShape(4096, 4096, 4096), Mesh2D(2, 2), Dataflow.OS, slices=2
        )
        plan = FaultPlan(compute_slowdown=1.5, seed=2)
        first = faulted_pass("meshslice", cfg, hw, plan)
        assert faulted_pass("meshslice", cfg, hw, plan) is first
        assert first.makespan > faulted_pass(
            "meshslice", cfg, hw, NULL_PLAN
        ).makespan
