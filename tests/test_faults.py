"""Tests for the fault & variability injection subsystem."""

import dataclasses

import pytest

from repro.algorithms import GeMMConfig, get_algorithm
from repro.core import Dataflow, GeMMShape
from repro.faults import DEFAULT_RETRY_TIMEOUT, NULL_PLAN, FaultPlan, FaultSpec
from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.sim import LINK_H, LINK_V, ProgramBuilder, simulate


def _program(hw=TPUV4):
    builder = ProgramBuilder(hw)
    ag = builder.allgather("ag", 4, 50e6, LINK_H)
    g = builder.gemm("g", 2048, 2048, 2048, deps=[ag])
    builder.reducescatter("rds", 4, 50e6, LINK_V, deps=[g])
    return builder.build()


def _pass_program(hw=TPUV4):
    cfg = GeMMConfig(
        GeMMShape(8192, 8192, 8192), Mesh2D(4, 4), Dataflow.OS, slices=4
    )
    return get_algorithm("meshslice").build_program(cfg, hw)


class TestFaultPlanValidation:
    def test_null_plan_is_null(self):
        assert NULL_PLAN.is_null
        assert FaultPlan().is_null

    def test_unit_factors_are_null(self):
        plan = FaultPlan(link_degradation=(("link_h", 1.0),))
        assert plan.is_null

    def test_rejects_speedups(self):
        with pytest.raises(ValueError):
            FaultPlan(compute_slowdown=0.9)
        with pytest.raises(ValueError):
            FaultPlan(link_degradation=(("link_h", 0.5),))

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(outage_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(launch_jitter=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(outage_penalty=-1.0)

    def test_hashable(self):
        plan = FaultPlan(compute_slowdown=1.5, seed=3)
        assert hash(plan) == hash(FaultPlan(compute_slowdown=1.5, seed=3))


class TestNullPlanBitIdentical:
    def test_apply_returns_same_object(self):
        program = _program()
        assert NULL_PLAN.apply(program) is program

    def test_spans_bit_identical(self):
        """Pins the tentpole guarantee: null plan == unfaulted run."""
        program = _pass_program()
        clean = program.run()
        faulted = program.run(NULL_PLAN)
        assert clean == faulted

    def test_simulate_bit_identical(self):
        program = _program()
        clean = simulate(program, TPUV4)
        nulled = simulate(program, TPUV4, faults=NULL_PLAN)
        assert clean.makespan == nulled.makespan
        assert clean.spans == nulled.spans


class TestPerturbations:
    def test_compute_slowdown_stretches_compute_only(self):
        program = _program()
        plan = FaultPlan(compute_slowdown=2.0)
        faulted = plan.apply(program)
        assert faulted is not program
        for before, after in zip(program.activities, faulted.activities):
            if before.kind in ("compute", "slice") and before.duration > 0:
                assert after.duration == pytest.approx(2 * before.duration)
            else:
                assert after.duration == before.duration

    def test_link_degradation_hits_matching_direction(self):
        program = _program()
        plan = FaultPlan(link_degradation=((LINK_H, 3.0),))
        faulted = plan.apply(program)
        for before, after in zip(program.activities, faulted.activities):
            if before.kind != "comm":
                assert after.duration == before.duration
                continue
            transfer = before.meta.get("transfer", 0.0)
            if LINK_H in before.exclusive and transfer > 0:
                extra = after.duration - before.duration
                assert extra == pytest.approx(2 * transfer)
                assert after.meta["transfer"] == pytest.approx(3 * transfer)
            else:
                assert after.duration == before.duration

    def test_shared_demand_units_conserved(self):
        program = _program()
        plan = FaultPlan(compute_slowdown=2.0, link_degradation=((LINK_H, 2.0),))
        faulted = plan.apply(program)
        for before, after in zip(program.activities, faulted.activities):
            for resource, demand in before.shared.items():
                assert before.duration * demand == pytest.approx(
                    after.duration * after.shared[resource]
                )

    def test_outage_adds_sync_and_retransmit(self):
        program = _program()
        plan = FaultPlan(outage_rate=1.0, outage_penalty=1e-3, seed=5)
        faulted = plan.apply(program)
        retried = [
            (before, after)
            for before, after in zip(program.activities, faulted.activities)
            if after.meta.get("retries")
        ]
        assert retried
        for before, after in retried:
            transfer = before.meta.get("transfer", 0.0)
            sync = before.meta.get("sync", 0.0)
            assert after.meta["sync"] == pytest.approx(sync + 1e-3)
            assert after.meta["transfer"] == pytest.approx(2 * transfer)
            assert after.duration == pytest.approx(
                before.duration + 1e-3 + transfer
            )

    def test_jitter_deterministic_per_seed(self):
        program = _program()
        plan = FaultPlan(launch_jitter=5e-6, seed=11)
        a = plan.apply(program).run()
        b = plan.apply(program).run()
        assert a == b
        other = FaultPlan(launch_jitter=5e-6, seed=12).apply(program).run()
        assert a != other

    def test_input_program_never_mutated(self):
        program = _program()
        baseline = [
            (act.duration, dict(act.shared), dict(act.meta))
            for act in program.activities
        ]
        FaultPlan(
            compute_slowdown=2.0,
            link_degradation=((LINK_H, 2.0), (LINK_V, 1.5)),
            launch_jitter=1e-6,
            outage_rate=1.0,
            outage_penalty=1e-3,
        ).apply(program)
        for act, (duration, shared, meta) in zip(program.activities, baseline):
            assert act.duration == duration
            assert act.shared == shared
            assert act.meta == meta

    def test_faulted_makespan_grows(self):
        program = _pass_program()
        plan = FaultPlan(compute_slowdown=1.5, link_degradation=((LINK_H, 2.0),))
        clean = simulate(program, TPUV4)
        faulted = simulate(program, TPUV4, faults=plan)
        assert faulted.makespan > clean.makespan
        # FLOPs are unchanged, so utilization reports the degradation.
        assert faulted.flop_utilization() < clean.flop_utilization()

    def test_plan_recorded_in_program_meta(self):
        program = _program()
        plan = FaultPlan(compute_slowdown=2.0)
        assert plan.apply(program).meta["fault_plan"] is plan


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(stragglers=-1)
        with pytest.raises(ValueError):
            FaultSpec(straggler_slowdown=0.9)
        with pytest.raises(ValueError):
            FaultSpec(link_slowdown=0.5)
        with pytest.raises(ValueError):
            FaultSpec(outage_rate=2.0)

    def test_null_spec_samples_null_plans(self):
        spec = FaultSpec()
        assert spec.is_null
        plan = spec.sample(16)
        assert plan.is_null

    def test_sample_deterministic(self):
        spec = FaultSpec(
            stragglers=2, straggler_slowdown=2.0,
            degraded_links=3, link_slowdown=3.0, seed=9,
        )
        assert spec.sample(16) == spec.sample(16)
        assert spec.sample(16) != dataclasses.replace(spec, seed=10).sample(16)

    def test_sample_bounds(self):
        spec = FaultSpec(
            stragglers=4, straggler_slowdown=1.5,
            degraded_links=6, link_slowdown=2.0, seed=1,
        )
        plan = spec.sample(64)
        assert 1.0 <= plan.compute_slowdown < 1.5
        assert plan.link_degradation
        for link, factor in plan.link_degradation:
            assert link in ("link_h", "link_v")
            assert 1.0 <= factor < 2.0

    def test_outage_penalty_defaults(self):
        spec = FaultSpec(outage_rate=0.1)
        assert spec.sample(16).outage_penalty == DEFAULT_RETRY_TIMEOUT
        assert (
            spec.sample(16, TPUV4).outage_penalty == TPUV4.link_retry_timeout
        )
        explicit = FaultSpec(outage_rate=0.1, outage_penalty=2e-3)
        assert explicit.sample(16, TPUV4).outage_penalty == 2e-3

    def test_ensemble_reproducible_and_distinct(self):
        spec = FaultSpec(stragglers=2, straggler_slowdown=2.0, seed=4)
        plans = spec.ensemble(16, TPUV4, count=5)
        assert plans == spec.ensemble(16, TPUV4, count=5)
        assert len(plans) == 5
        assert len({p.compute_slowdown for p in plans}) > 1

    def test_ensemble_rejects_empty(self):
        with pytest.raises(ValueError):
            FaultSpec().ensemble(16, count=0)

    def test_sample_rejects_no_chips(self):
        with pytest.raises(ValueError):
            FaultSpec().sample(0)


class TestFaultedPassCache:
    def test_null_plan_shares_clean_cache_entry(self, hw):
        from repro.perf.pipeline import faulted_pass, simulated_pass

        cfg = GeMMConfig(
            GeMMShape(4096, 4096, 4096), Mesh2D(2, 2), Dataflow.OS, slices=2
        )
        clean = simulated_pass("meshslice", cfg, hw)
        assert faulted_pass("meshslice", cfg, hw, NULL_PLAN) is clean

    def test_faulted_result_memoized(self, hw):
        from repro.perf.pipeline import faulted_pass

        cfg = GeMMConfig(
            GeMMShape(4096, 4096, 4096), Mesh2D(2, 2), Dataflow.OS, slices=2
        )
        plan = FaultPlan(compute_slowdown=1.5, seed=2)
        first = faulted_pass("meshslice", cfg, hw, plan)
        assert faulted_pass("meshslice", cfg, hw, plan) is first
        assert first.makespan > faulted_pass(
            "meshslice", cfg, hw, NULL_PLAN
        ).makespan


class TestRetryTimeoutSingleSource:
    def test_default_derived_from_hardware_params(self):
        from repro.hw.params import HardwareParams

        assert DEFAULT_RETRY_TIMEOUT == HardwareParams().link_retry_timeout


class TestHardFaults:
    def test_constructors_and_validation(self):
        from repro.faults import chip_down, link_down

        fault = chip_down(1e-3)
        assert (fault.time, fault.resource, fault.kind) == (1e-3, "core", "chip")
        fault = link_down(2e-3, LINK_V)
        assert (fault.time, fault.resource, fault.kind) == (2e-3, LINK_V, "link")
        with pytest.raises(ValueError):
            chip_down(-1.0)
        with pytest.raises(ValueError):
            link_down(1e-3, "nic")

    def test_earliest_resolves_ties_to_first_listed(self):
        from repro.faults import chip_down, earliest, link_down

        a, b = link_down(1e-3), chip_down(1e-3)
        assert earliest((a, b)) is a
        assert earliest((b, chip_down(5e-4))).time == 5e-4
        with pytest.raises(ValueError):
            earliest(())

    def test_hard_fault_plan_is_not_null_but_rewrites_nothing(self):
        from repro.faults import chip_down

        plan = FaultPlan(hard_faults=(chip_down(1e-3),))
        assert not plan.is_null
        program = _program()
        assert plan.apply(program) is program

    def test_simulate_surfaces_structured_failure(self):
        from repro.faults import chip_down

        program = _program()
        clean = simulate(program, TPUV4)
        when = clean.makespan / 2
        res = simulate(
            program, TPUV4, faults=FaultPlan(hard_faults=(chip_down(when),))
        )
        assert res.failure is not None
        assert not res.completed
        assert res.failure.time == when
        assert res.failure.resource == "core"
        assert res.failure.kind == "chip"
        assert res.makespan == when
        assert res.flop_utilization() == 0.0
        # The truncated trace never extends past the failure instant.
        for span in res.spans:
            assert span.end <= when + 1e-18
        for span in res.failure.in_flight:
            assert span.end == when
            assert span.meta.get("interrupted") is True
        assert res.failure.total == len(program.activities)

    def test_fault_after_makespan_never_fires(self):
        from repro.faults import chip_down

        program = _program()
        clean = simulate(program, TPUV4)
        res = simulate(
            program,
            TPUV4,
            faults=FaultPlan(hard_faults=(chip_down(clean.makespan * 10),)),
        )
        assert res.failure is None
        assert res.spans == clean.spans

    def test_program_run_raises_on_failure(self):
        from repro.faults import chip_down
        from repro.sim import SimulationError

        program = _program()
        with pytest.raises(SimulationError, match="chip fault"):
            program.run(FaultPlan(hard_faults=(chip_down(1e-9),)))

    def test_earliest_of_many_fires(self):
        from repro.faults import chip_down, link_down

        program = _program()
        plan = FaultPlan(hard_faults=(link_down(5e-3), chip_down(1e-9)))
        res = simulate(program, TPUV4, faults=plan)
        assert res.failure.resource == "core"
        assert res.failure.time == 1e-9

    def test_spec_carries_hard_faults(self):
        from repro.faults import chip_down

        spec = FaultSpec(hard_faults=(chip_down(1e-3),))
        assert not spec.is_null
        plan = spec.sample(16, TPUV4)
        assert plan.hard_faults == spec.hard_faults
        assert not plan.is_null


class TestRetryPolicyPlans:
    def test_policy_validation(self):
        from repro.recovery import RetryPolicy

        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=1.0, max_backoff=0.5)

    def test_backoff_truncated_exponential(self):
        from repro.recovery import RetryPolicy

        policy = RetryPolicy(
            max_retries=4, base_backoff=1e-3, backoff_factor=2.0,
            max_backoff=3e-3,
        )
        assert policy.backoff(0) == 1e-3
        assert policy.backoff(1) == 2e-3
        assert policy.backoff(2) == 3e-3  # truncated
        assert policy.backoff(3) == 3e-3
        assert policy.total_backoff() == pytest.approx(9e-3)

    def test_guaranteed_exhaustion_marks_and_kills(self):
        from repro.recovery import RetryPolicy

        policy = RetryPolicy(max_retries=2, base_backoff=1e-4)
        plan = FaultPlan(outage_rate=1.0, retry_policy=policy, seed=3)
        program = _program()
        faulted = plan.apply(program)
        marked = [
            act for act in faulted.activities
            if act.meta.get("failed_resource")
        ]
        assert marked
        for act in marked:
            assert act.meta["failed_resource"] in (LINK_H, LINK_V)
            assert act.meta["retries"] >= 2
        spans, failure = program.execute(plan)
        assert failure is not None
        assert failure.kind == "link"
        assert failure.resource in (LINK_H, LINK_V)

    def test_successful_retries_charge_backoff_and_retransmits(self):
        import random as random_module

        from repro.recovery import RetryPolicy

        policy = RetryPolicy(max_retries=64, base_backoff=1e-4)
        rate = 0.4
        plan = FaultPlan(outage_rate=rate, retry_policy=policy, seed=7)
        program = _program()
        faulted = plan.apply(program)
        # Replay the plan's stream to predict each episode exactly.
        rng = random_module.Random(plan.seed)
        for before, after in zip(program.activities, faulted.activities):
            transfer = float(before.meta.get("transfer", 0.0))
            if before.kind != "comm" or transfer <= 0.0:
                continue
            if rng.random() < rate:
                episode = policy.episode(rng, transfer, rate)
                assert not episode.exhausted
                assert after.meta["retries"] == episode.attempts
                assert after.duration == pytest.approx(
                    before.duration + episode.delay_seconds
                )
            else:
                assert after.duration == before.duration

    def test_retry_policy_spans_deterministic(self):
        from repro.recovery import RetryPolicy

        plan = FaultPlan(
            outage_rate=0.5, retry_policy=RetryPolicy(), seed=13
        )
        program = _program()
        assert program.execute(plan) == program.execute(plan)


def _random_program(seed, hw=TPUV4):
    """A random small activity DAG exercising every builder vocabulary."""
    import random as random_module

    rng = random_module.Random(seed)
    builder = ProgramBuilder(hw)
    ids = []
    for i in range(rng.randint(4, 12)):
        deps = rng.sample(ids, min(len(ids), rng.randint(0, 2)))
        op = rng.choice(("gemm", "ag", "rds", "sendrecv", "slice"))
        link = rng.choice((LINK_H, LINK_V))
        if op == "gemm":
            dim = rng.choice((512, 1024, 2048))
            ids.append(builder.gemm(f"g{i}", dim, dim, dim, deps=deps))
        elif op == "ag":
            ids.append(
                builder.allgather(f"ag{i}", 4, rng.uniform(1e6, 80e6), link, deps=deps)
            )
        elif op == "rds":
            ids.append(
                builder.reducescatter(f"rds{i}", 4, rng.uniform(1e6, 80e6), link, deps=deps)
            )
        elif op == "sendrecv":
            ids.append(
                builder.sendrecv(f"sr{i}", rng.uniform(1e6, 40e6), link, deps=deps)
            )
        else:
            ids.append(
                builder.slice_copy(f"s{i}", rng.uniform(1e5, 8e6), deps=deps)
            )
    return builder.build()


#: Hardware with effectively uncontended shared resources. Fault
#: stretches conserve an activity's *total* HBM units (same bytes over
#: a longer window), so when shared capacity binds, a stretched
#: activity's reduced demand rate can genuinely relieve contention for
#: concurrent work — the fluid model's honest answer, but it caps how
#: strong a monotonicity guarantee can be. With shared resources
#: uncontended the guarantee is exact, and these property tests pin it.
_UNCONTENDED = dataclasses.replace(TPUV4, hbm_bandwidth=1e21)


class TestFaultMonotonicity:
    """Property tests: injected time is never below clean, and more
    severe plans never finish faster. Fixed plan seeds keep the jitter/
    outage draw positions aligned across severities, so flat-penalty
    scaling perturbs every activity pointwise-monotonically."""

    SEEDS = range(12)

    def test_injected_never_below_clean(self):
        for seed in self.SEEDS:
            program = _random_program(seed, _UNCONTENDED)
            clean = simulate(program, _UNCONTENDED).makespan
            plan = FaultPlan(
                compute_slowdown=1.0 + 0.1 * (seed + 1),
                link_degradation=((LINK_H, 1.5),),
                launch_jitter=2e-6,
                outage_rate=0.3,
                outage_penalty=5e-4,
                seed=seed,
            )
            faulted = simulate(program, _UNCONTENDED, faults=plan).makespan
            assert faulted >= clean

    def test_severity_monotone(self):
        for seed in self.SEEDS:
            program = _random_program(seed, _UNCONTENDED)
            previous = simulate(program, _UNCONTENDED).makespan
            for slowdown in (1.1, 1.5, 2.0, 3.0):
                plan = FaultPlan(compute_slowdown=slowdown, seed=seed)
                current = simulate(
                    program, _UNCONTENDED, faults=plan
                ).makespan
                # 1e-15: last-ulp arithmetic noise on untouched paths.
                assert current >= previous - 1e-15
                previous = current

    def test_outage_rate_monotone(self):
        for seed in self.SEEDS:
            program = _random_program(seed, _UNCONTENDED)
            previous = simulate(program, _UNCONTENDED).makespan
            for rate in (0.1, 0.3, 0.6, 1.0):
                plan = FaultPlan(
                    outage_rate=rate, outage_penalty=5e-4, seed=seed
                )
                current = simulate(
                    program, _UNCONTENDED, faults=plan
                ).makespan
                # 1e-15: last-ulp arithmetic noise on untouched paths.
                assert current >= previous - 1e-15
                previous = current

    def test_outage_rate_monotone_under_contention(self):
        """Outage retransmissions charge their full extra traffic (the
        demand rate never dips below nominal), so this one stays
        monotone even with HBM/NIC contention live."""
        for seed in self.SEEDS:
            program = _random_program(seed)
            previous = simulate(program, TPUV4).makespan
            for rate in (0.1, 0.3, 0.6, 1.0):
                plan = FaultPlan(
                    outage_rate=rate, outage_penalty=5e-4, seed=seed
                )
                current = simulate(program, TPUV4, faults=plan).makespan
                assert current >= previous - 1e-15
                previous = current
