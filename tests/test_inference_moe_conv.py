"""Tests for the Section 6 extensions: inference, MoE, convolutions."""

import numpy as np
import pytest

from repro.core import GeMMShape
from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.models import GPT3_175B
from repro.models.conv import (
    ConvLayer,
    conv2d_direct,
    conv2d_via_gemm,
    im2col,
)
from repro.models.inference import (
    InferenceWorkload,
    arithmetic_intensity,
    inference_gemms,
    is_memory_bound,
)
from repro.models.moe import (
    MoEConfig,
    alltoall_seconds,
    dispatch_bytes,
    expert_ffn_gemms,
    moe_block_flops,
)


class TestInference:
    def test_phase_rows(self):
        prefill = InferenceWorkload(GPT3_175B, batch=16, prompt_len=512,
                                    phase="prefill")
        decode = InferenceWorkload(GPT3_175B, batch=16, phase="decode")
        assert prefill.rows == 16 * 512
        assert decode.rows == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            InferenceWorkload(GPT3_175B, batch=0)
        with pytest.raises(ValueError):
            InferenceWorkload(GPT3_175B, batch=1, phase="train")

    def test_four_gemms_per_block(self):
        workload = InferenceWorkload(GPT3_175B, batch=8)
        gemms = inference_gemms(workload)
        assert [name for name, _ in gemms] == [
            "qkv", "attn_out", "ffn_in", "ffn_out",
        ]

    def test_decode_is_memory_bound_prefill_is_not(self):
        """The Section 6 roofline distinction."""
        decode = InferenceWorkload(GPT3_175B, batch=32, phase="decode")
        prefill = InferenceWorkload(GPT3_175B, batch=32, prompt_len=1024,
                                    phase="prefill")
        for _name, shape in inference_gemms(decode):
            assert is_memory_bound(shape, TPUV4)
        for _name, shape in inference_gemms(prefill):
            assert not is_memory_bound(shape, TPUV4)

    def test_intensity_grows_with_rows(self):
        thin = GeMMShape(8, 1024, 1024)
        fat = GeMMShape(8192, 1024, 1024)
        assert arithmetic_intensity(fat) > arithmetic_intensity(thin)


class TestInferenceAblation:
    def test_decode_prefers_coarse_slicing(self):
        from repro.experiments.ablation_inference import mean_tuned_slices, run

        rows = run(chips=16, batch=8, prompt_len=256)
        assert mean_tuned_slices(rows, "decode") < mean_tuned_slices(
            rows, "prefill"
        )

    def test_meshslice_matches_collective_in_decode(self):
        from repro.experiments.ablation_inference import run

        rows = run(chips=16, batch=8, prompt_len=256,
                   algorithms=("collective", "meshslice"))
        by_key = {(r.phase, r.layer, r.algorithm): r.latency_ms for r in rows}
        for layer in ("qkv", "attn_out", "ffn_in", "ffn_out"):
            ms = by_key[("decode", layer, "meshslice")]
            coll = by_key[("decode", layer, "collective")]
            assert ms <= coll * 1.02


class TestMoE:
    def test_expert_tokens(self):
        cfg = MoEConfig(GPT3_175B, num_experts=16, top_k=2,
                        capacity_factor=1.0)
        assert cfg.expert_tokens(1600) == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            MoEConfig(GPT3_175B, num_experts=0)
        with pytest.raises(ValueError):
            MoEConfig(GPT3_175B, num_experts=4, top_k=5)
        with pytest.raises(ValueError):
            MoEConfig(GPT3_175B, num_experts=4, capacity_factor=0.5)

    def test_expert_gemms_shapes(self):
        cfg = MoEConfig(GPT3_175B, num_experts=8, top_k=2)
        gemms = dict(expert_ffn_gemms(cfg, tokens=8192))
        rows = cfg.expert_tokens(8192)
        assert gemms["expert_ffn_in"].as_tuple() == (
            rows, GPT3_175B.ffn_dim, GPT3_175B.hidden
        )
        assert gemms["expert_ffn_out"].as_tuple() == (
            rows, GPT3_175B.hidden, GPT3_175B.ffn_dim
        )

    def test_dispatch_bytes(self):
        cfg = MoEConfig(GPT3_175B, num_experts=8, top_k=2)
        assert dispatch_bytes(cfg, tokens=1000) == pytest.approx(
            1000 * 2 * GPT3_175B.hidden * 2
        )

    def test_alltoall_free_for_single_group(self):
        assert alltoall_seconds(1e9, groups=1, chips=64, hw=TPUV4) == 0.0

    def test_alltoall_grows_with_groups(self):
        few = alltoall_seconds(1e9, groups=2, chips=64, hw=TPUV4)
        many = alltoall_seconds(1e9, groups=16, chips=64, hw=TPUV4)
        assert many > few

    def test_moe_flops_exceed_dense_ffn_for_topk2(self):
        """top-2 routing with capacity slack runs >2x the dense FFN."""
        cfg = MoEConfig(GPT3_175B, num_experts=16, top_k=2)
        tokens = 16384
        h, f = GPT3_175B.hidden, GPT3_175B.ffn_dim
        dense_ffn = 2 * (2.0 * tokens * h * f)
        moe = moe_block_flops(cfg, tokens)
        attention = 2.0 * tokens * h * 3 * h + 2.0 * tokens * h * h
        assert moe - attention > 2.0 * dense_ffn


class TestConv:
    def test_output_size(self):
        layer = ConvLayer(3, 8, kernel=3, stride=1, padding=1)
        assert layer.output_size(16, 16) == (16, 16)
        strided = ConvLayer(3, 8, kernel=3, stride=2)
        assert strided.output_size(9, 9) == (4, 4)

    def test_gemm_shape(self):
        layer = ConvLayer(16, 32, kernel=3, padding=1)
        shape = layer.gemm_shape(batch=4, height=8, width=8)
        assert shape.as_tuple() == (4 * 8 * 8, 32, 16 * 9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvLayer(0, 8, 3)
        with pytest.raises(ValueError):
            ConvLayer(3, 8, 3, stride=0)
        with pytest.raises(ValueError):
            ConvLayer(3, 8, kernel=9).output_size(4, 4)

    def test_im2col_shape(self, rng):
        layer = ConvLayer(3, 8, kernel=3)
        x = rng.standard_normal((2, 3, 6, 6))
        patches = im2col(x, layer)
        assert patches.shape == (2 * 4 * 4, 3 * 9)

    def test_gemm_lowering_matches_direct(self, rng):
        layer = ConvLayer(3, 5, kernel=3, stride=2, padding=1)
        x = rng.standard_normal((2, 3, 9, 9))
        w = rng.standard_normal((5, 3, 3, 3))
        assert np.allclose(
            conv2d_via_gemm(x, w, layer), conv2d_direct(x, w, layer)
        )

    def test_distributed_conv_via_meshslice(self, rng):
        """Section 6: a convolution executed as a MeshSlice 2D GeMM."""
        from repro.core import meshslice_os

        layer = ConvLayer(4, 8, kernel=3, padding=1)
        x = rng.standard_normal((2, 4, 8, 8))
        w = rng.standard_normal((8, 4, 3, 3))
        mesh = Mesh2D(2, 2)

        def distributed(a, b):
            return meshslice_os(a, b, mesh, slices=3, block=3)

        out = conv2d_via_gemm(x, w, layer, gemm=distributed)
        assert np.allclose(out, conv2d_direct(x, w, layer))

    def test_weights_shape_checked(self, rng):
        layer = ConvLayer(3, 5, kernel=3)
        with pytest.raises(ValueError):
            conv2d_via_gemm(
                rng.standard_normal((1, 3, 6, 6)),
                rng.standard_normal((5, 3, 2, 2)),
                layer,
            )
