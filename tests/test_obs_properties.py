"""Property-based tests of the observability layer's metric invariants.

Reuses the random-DAG generator of ``test_engine_properties`` (widened
to mixed compute/slice/comm kinds) and checks the invariants any
correct derivation must maintain: utilizations live in the unit
interval, the overlap measure never exceeds either of the unions it
intersects, kind durations partition the total span time, queue-wait
samples cover every started activity, and the derived metrics are
independent of both kill switches (``REPRO_NO_CACHE`` never changes
them, ``REPRO_NO_METRICS`` never changes the spans).
"""

import pytest
from hypothesis import given, settings

from repro.algorithms import GeMMConfig, get_algorithm
from repro.core import Dataflow, GeMMShape
from repro.hw import TPUV4
from repro.mesh import Mesh2D
from repro.obs.derive import derive_run_metrics, merge_run_metrics
from repro.obs.hooks import capture_waits
from repro.sim import Engine

from test_engine_properties import random_dag

MIXED_KINDS = ("compute", "slice", "comm")


def _run(activities):
    return Engine(activities, {"hbm": 100.0}).run()


class TestDerivedInvariants:
    @settings(max_examples=100, deadline=None)
    @given(random_dag(kinds=MIXED_KINDS))
    def test_utilization_in_unit_interval(self, activities):
        metrics = derive_run_metrics(_run(activities))
        for resource, value in metrics.utilization.items():
            assert 0.0 <= value <= 1.0 + 1e-9
            assert metrics.busy_seconds[resource] <= metrics.makespan + 1e-9
            assert metrics.busy_seconds[resource] >= 0.0

    @settings(max_examples=100, deadline=None)
    @given(random_dag(kinds=MIXED_KINDS))
    def test_overlap_bounded_by_both_unions(self, activities):
        metrics = derive_run_metrics(_run(activities))
        bound = min(metrics.compute_seconds, metrics.comm_seconds)
        assert -1e-9 <= metrics.overlap_seconds <= bound + 1e-9
        assert 0.0 <= metrics.overlap_fraction <= 1.0 + 1e-9
        if metrics.makespan > 0:
            assert metrics.overlap_fraction == pytest.approx(
                metrics.overlap_seconds / metrics.makespan
            )

    @settings(max_examples=100, deadline=None)
    @given(random_dag(kinds=MIXED_KINDS))
    def test_kind_durations_partition_span_time(self, activities):
        spans = _run(activities)
        metrics = derive_run_metrics(spans)
        assert sum(metrics.kind_durations.values()) == pytest.approx(
            sum(s.duration for s in spans), abs=1e-9
        )
        # comm components describe nominal comm meta, nothing else
        assert metrics.comm_launch >= 0.0
        assert metrics.comm_transfer >= 0.0
        assert metrics.comm_sync >= 0.0

    @settings(max_examples=60, deadline=None)
    @given(random_dag(kinds=MIXED_KINDS))
    def test_queue_waits_cover_every_start(self, activities):
        with capture_waits() as waits:
            spans = _run(activities)
        assert waits is not None
        assert len(waits) == len(spans)
        assert all(wait >= -1e-12 for _kind, wait in waits)
        metrics = derive_run_metrics(spans, waits)
        assert sum(s.count for s in metrics.queue_wait.values()) == len(spans)
        for stats in metrics.queue_wait.values():
            assert stats.max <= stats.total + 1e-12
            assert stats.mean <= stats.max + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(random_dag(kinds=MIXED_KINDS))
    def test_merge_preserves_totals(self, activities):
        spans = _run(activities)
        one = derive_run_metrics(spans)
        merged = merge_run_metrics([one, one])
        assert merged.makespan == pytest.approx(2 * one.makespan)
        assert merged.compute_seconds == pytest.approx(2 * one.compute_seconds)
        assert merged.overlap_seconds == pytest.approx(2 * one.overlap_seconds)
        for resource, busy in one.busy_seconds.items():
            assert merged.busy_seconds[resource] == pytest.approx(2 * busy)
        # utilization is re-normalized against the combined makespan
        for resource, value in one.utilization.items():
            assert merged.utilization[resource] == pytest.approx(value)


class TestKillSwitchIndependence:
    CFG = GeMMConfig(
        GeMMShape(2048, 2048, 2048), Mesh2D(4, 4), Dataflow.OS, slices=4
    )

    def test_metrics_identical_across_cache_switch(self, monkeypatch):
        """Derived metrics never depend on the memoization layer."""
        from repro.perf.cache import clear_caches
        from repro.perf.pipeline import simulated_pass

        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        clear_caches()
        warm = simulated_pass("meshslice", self.CFG, TPUV4)
        cached = simulated_pass("meshslice", self.CFG, TPUV4)
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        uncached = simulated_pass("meshslice", self.CFG, TPUV4)
        assert warm.metrics is not None
        assert cached.metrics.as_dict() == warm.metrics.as_dict()
        assert uncached.metrics.as_dict() == warm.metrics.as_dict()
        assert [s for s in uncached.spans] == [s for s in warm.spans]

    def test_no_metrics_spans_bit_identical(self, monkeypatch):
        """The engine's output never depends on REPRO_NO_METRICS."""
        from repro.sim import simulate

        alg = get_algorithm("meshslice")
        monkeypatch.delenv("REPRO_NO_METRICS", raising=False)
        program = alg.build_program(self.CFG, TPUV4)
        with_metrics = simulate(program, TPUV4)
        monkeypatch.setenv("REPRO_NO_METRICS", "1")
        without = simulate(alg.build_program(self.CFG, TPUV4), TPUV4)
        assert with_metrics.metrics is not None
        assert without.metrics is None
        assert without.spans == with_metrics.spans
        assert without.makespan == with_metrics.makespan

    def test_derivable_after_the_fact(self, monkeypatch):
        """Metrics disabled at simulation time are recomputable from
        the spans (minus the queue waits, which need the live hook)."""
        from repro.sim import simulate

        alg = get_algorithm("meshslice")
        monkeypatch.delenv("REPRO_NO_METRICS", raising=False)
        live = simulate(alg.build_program(self.CFG, TPUV4), TPUV4)
        monkeypatch.setenv("REPRO_NO_METRICS", "1")
        dead = simulate(alg.build_program(self.CFG, TPUV4), TPUV4)
        recomputed = derive_run_metrics(dead.spans)
        expected = live.metrics.as_dict()
        expected["queue_wait"] = {}
        assert recomputed.as_dict() == expected
