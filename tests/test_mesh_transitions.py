"""Property-based tests of elastic mesh transitions.

Every elastic transition (:meth:`Mesh2D.without_row` /
:meth:`~Mesh2D.without_col` / :meth:`~Mesh2D.with_replacement` /
:meth:`~Mesh2D.reshape`) must hand back a mesh the rest of the stack
can immediately run on: all rank layouts stay bijections between
logical ranks and physical coordinates, ``rank_of`` inverts them, and
the torus metric keeps its metric-space properties. These invariants
are what the reshard-migration programs and the lifetime simulator
lean on when they re-tune onto a transition's result.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh import Mesh2D
from repro.mesh.topology import layout_names

dims = st.integers(1, 32)

#: Dimensions small enough to enumerate every coordinate pair.
small_dims = st.integers(1, 8)


@st.composite
def meshes(draw, dim=dims):
    return Mesh2D(draw(dim), draw(dim))


@st.composite
def meshes_with_coord(draw, dim=dims):
    mesh = draw(meshes(dim))
    i = draw(st.integers(0, mesh.rows - 1))
    j = draw(st.integers(0, mesh.cols - 1))
    return mesh, (i, j)


def assert_layouts_bijective(mesh: Mesh2D) -> None:
    """Every layout is a rank -> coord bijection inverted by rank_of."""
    coords = set(mesh.coords())
    for name in layout_names():
        order = mesh.layout(name)
        assert len(order) == mesh.size
        assert set(order) == coords
        for rank, coord in enumerate(order):
            assert mesh.rank_of(coord, name) == rank


class TestTransitionsPreserveLayouts:
    @settings(max_examples=60, deadline=None)
    @given(meshes_with_coord())
    def test_without_row(self, mesh_coord):
        mesh, (i, _j) = mesh_coord
        if mesh.rows == 1:
            with pytest.raises(ValueError):
                mesh.without_row(i)
            return
        survivor = mesh.without_row(i)
        assert survivor.shape == (mesh.rows - 1, mesh.cols)
        assert_layouts_bijective(survivor)

    @settings(max_examples=60, deadline=None)
    @given(meshes_with_coord())
    def test_without_col(self, mesh_coord):
        mesh, (_i, j) = mesh_coord
        if mesh.cols == 1:
            with pytest.raises(ValueError):
                mesh.without_col(j)
            return
        survivor = mesh.without_col(j)
        assert survivor.shape == (mesh.rows, mesh.cols - 1)
        assert_layouts_bijective(survivor)

    @settings(max_examples=60, deadline=None)
    @given(meshes_with_coord(), st.integers(0, 4))
    def test_with_replacement(self, mesh_coord, spare):
        mesh, dead = mesh_coord
        replaced = mesh.with_replacement(dead, spare)
        # Spare swap-in keeps the full torus shape.
        assert replaced.shape == mesh.shape
        assert_layouts_bijective(replaced)

    @settings(max_examples=60, deadline=None)
    @given(meshes(), dims, dims)
    def test_reshape(self, mesh, rows, cols):
        reshaped = mesh.reshape(rows, cols)
        assert reshaped.shape == (rows, cols)
        assert_layouts_bijective(reshaped)

    @settings(max_examples=60, deadline=None)
    @given(meshes_with_coord())
    def test_invalid_transitions_rejected(self, mesh_coord):
        mesh, dead = mesh_coord
        with pytest.raises(IndexError):
            mesh.with_replacement((mesh.rows, 0))
        with pytest.raises(ValueError):
            mesh.with_replacement(dead, spare=-1)
        with pytest.raises(ValueError):
            mesh.reshape(0, 1)
        with pytest.raises(ValueError):
            mesh.reshape(1, 0)


class TestTorusMetric:
    @settings(max_examples=60, deadline=None)
    @given(meshes(small_dims))
    def test_metric_space(self, mesh):
        """Identity, symmetry, and the unit bound per axis step."""
        coords = list(mesh.coords())
        for a in coords:
            assert mesh.torus_distance(a, a) == 0
            for b in coords:
                d = mesh.torus_distance(a, b)
                assert d == mesh.torus_distance(b, a)
                assert 0 <= d <= mesh.rows // 2 + mesh.cols // 2
                assert (d == 0) == (a == b)

    @settings(max_examples=60, deadline=None)
    @given(meshes(small_dims))
    def test_neighbors_are_one_hop(self, mesh):
        for coord in mesh.coords():
            for neighbor in (
                mesh.right_neighbor(coord),
                mesh.left_neighbor(coord),
                mesh.down_neighbor(coord),
                mesh.up_neighbor(coord),
            ):
                expected = 0 if neighbor == coord else 1
                assert mesh.torus_distance(coord, neighbor) == expected

    @settings(max_examples=60, deadline=None)
    @given(meshes(small_dims))
    def test_mean_torus_distance_matches_enumeration(self, mesh):
        """The closed form equals the brute-force all-pairs mean."""
        coords = list(mesh.coords())
        total = sum(
            mesh.torus_distance(a, b) for a in coords for b in coords
        )
        mean = total / (len(coords) ** 2)
        assert mesh.mean_torus_distance() == pytest.approx(mean)

    @settings(max_examples=60, deadline=None)
    @given(meshes_with_coord(small_dims))
    def test_metric_survives_transitions(self, mesh_coord):
        """Transition results keep the metric's identity property."""
        mesh, dead = mesh_coord
        survivors = [mesh.with_replacement(dead)]
        if mesh.rows > 1:
            survivors.append(mesh.without_row(dead[0]))
        if mesh.cols > 1:
            survivors.append(mesh.without_col(dead[1]))
        survivors.append(mesh.reshape(mesh.cols, mesh.rows))
        for survivor in survivors:
            for coord in survivor.coords():
                assert survivor.torus_distance(coord, coord) == 0
