"""Tests for the silent-data-corruption injection layer."""

import dataclasses

import numpy as np
import pytest

from repro.core import meshslice_os
from repro.core.gemm import local_gemm
from repro.faults import (
    NULL_SDC_PLAN,
    SDC_OPS,
    SDCPlan,
    sdc_injection,
)
from repro.faults.sdc import MAX_BIT, corrupt_block, corrupt_shards
from repro.mesh import Mesh2D


class TestPlanValidation:
    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            SDCPlan(rate=-0.1)
        with pytest.raises(ValueError):
            SDCPlan(rate=1.1)
        SDCPlan(rate=0.0)
        SDCPlan(rate=1.0)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown SDC ops"):
            SDCPlan(rate=0.5, ops=("ag_col", "warp_drive"))

    def test_bit_bounds(self):
        with pytest.raises(ValueError):
            SDCPlan(rate=0.5, bit=-1)
        with pytest.raises(ValueError):
            SDCPlan(rate=0.5, bit=MAX_BIT + 1)  # the sign bit
        SDCPlan(rate=0.5, bit=MAX_BIT)

    def test_max_flips_non_negative(self):
        with pytest.raises(ValueError):
            SDCPlan(rate=0.5, max_flips=-1)

    def test_is_null(self):
        assert NULL_SDC_PLAN.is_null
        assert SDCPlan(rate=0.0).is_null
        assert SDCPlan(rate=0.5, ops=()).is_null
        assert SDCPlan(rate=0.5, max_flips=0).is_null
        assert not SDCPlan(rate=0.5).is_null

    def test_ensemble_consecutive_seeds(self):
        plans = SDCPlan(rate=0.5, seed=41).ensemble(3)
        assert [p.seed for p in plans] == [41, 42, 43]
        assert all(p.rate == 0.5 for p in plans)
        with pytest.raises(ValueError):
            SDCPlan(rate=0.5).ensemble(0)


@pytest.fixture
def operands():
    rng = np.random.default_rng(0)
    a = rng.integers(-4, 5, (16, 16)).astype(np.float64)
    b = rng.integers(-4, 5, (16, 16)).astype(np.float64)
    return a, b


class TestNullPlanContract:
    def test_null_plan_bit_identical(self, operands):
        a, b = operands
        baseline = meshslice_os(a, b, Mesh2D(2, 2), slices=2)
        for plan in (None, NULL_SDC_PLAN, SDCPlan(rate=0.5, max_flips=0)):
            with sdc_injection(plan) as injector:
                c = meshslice_os(a, b, Mesh2D(2, 2), slices=2)
            assert injector.flips == 0
            assert np.array_equal(c, baseline)

    def test_hooks_identity_outside_context(self, operands):
        a, _ = operands
        shards = {(0, 0): a}
        assert corrupt_shards("ag_col", shards) is shards
        assert corrupt_block("gemm", a) is a

    def test_null_context_consumes_no_randomness(self, operands):
        a, b = operands
        # Two plans with the same seed: a null context in between must
        # not advance any shared stream.
        plan = SDCPlan(rate=1.0, ops=("gemm",), max_flips=1, seed=3)
        with sdc_injection(plan) as first:
            local_gemm(a, b)
        with sdc_injection(NULL_SDC_PLAN):
            pass
        with sdc_injection(plan) as second:
            local_gemm(a, b)
        assert first.events == second.events


class TestInjection:
    def test_deterministic_across_contexts(self, operands):
        a, b = operands
        plan = SDCPlan(rate=0.3, seed=11)
        runs = []
        for _ in range(2):
            with sdc_injection(plan) as injector:
                c = meshslice_os(a, b, Mesh2D(2, 2), slices=2)
            runs.append((c, tuple(injector.events)))
        assert np.array_equal(runs[0][0], runs[1][0])
        assert runs[0][1] == runs[1][1]

    def test_rate_one_corrupts_result(self, operands):
        a, b = operands
        with sdc_injection(SDCPlan(rate=1.0, seed=1, bit=52)) as injector:
            c = meshslice_os(a, b, Mesh2D(2, 2), slices=2)
        assert injector.flips > 0
        assert not np.array_equal(c, a @ b)

    def test_ops_filtering(self, operands):
        a, b = operands
        plan = SDCPlan(rate=1.0, ops=("gemm",), seed=5)
        with sdc_injection(plan) as injector:
            meshslice_os(a, b, Mesh2D(2, 2), slices=2)
        assert injector.flips > 0
        assert all(e.op == "gemm" for e in injector.events)

    def test_max_flips_cap(self, operands):
        a, b = operands
        plan = SDCPlan(rate=1.0, seed=5, max_flips=3)
        with sdc_injection(plan) as injector:
            meshslice_os(a, b, Mesh2D(2, 2), slices=2)
        assert injector.flips == 3

    def test_forced_bit(self, operands):
        a, b = operands
        plan = SDCPlan(rate=1.0, seed=5, bit=40, max_flips=4)
        with sdc_injection(plan) as injector:
            meshslice_os(a, b, Mesh2D(2, 2), slices=2)
        assert injector.flips == 4
        assert all(e.bit == 40 for e in injector.events)

    def test_flip_records_before_after(self):
        arr = np.ones((4, 4))
        plan = SDCPlan(rate=1.0, seed=0, bit=52)
        with sdc_injection(plan) as injector:
            out = corrupt_block("gemm", arr)
        assert out is not arr
        assert np.array_equal(arr, np.ones((4, 4)))  # input untouched
        (event,) = injector.events
        assert event.before == 1.0
        assert event.after == out[event.index]
        assert event.after != 1.0

    def test_float64_only(self):
        plan = SDCPlan(rate=1.0, seed=0)
        with sdc_injection(plan):
            with pytest.raises(ValueError, match="float64"):
                corrupt_block("gemm", np.ones((2, 2), dtype=np.float32))

    def test_contexts_do_not_nest(self):
        plan = SDCPlan(rate=0.5, seed=0)
        with sdc_injection(plan):
            with pytest.raises(RuntimeError, match="nest"):
                with sdc_injection(plan):
                    pass

    def test_context_disarms_after_exception(self):
        plan = SDCPlan(rate=1.0, seed=0)
        with pytest.raises(RuntimeError, match="boom"):
            with sdc_injection(plan):
                raise RuntimeError("boom")
        arr = np.ones((2, 2))
        assert corrupt_block("gemm", arr) is arr

    def test_shards_visited_in_sorted_order(self):
        shards = {
            (1, 0): np.zeros((2, 2)),
            (0, 0): np.zeros((2, 2)),
            (0, 1): np.zeros((2, 2)),
        }
        plan = SDCPlan(rate=1.0, seed=9, max_flips=2)
        with sdc_injection(plan) as injector:
            corrupt_shards("ag_col", shards)
        assert [e.coord for e in injector.events] == [(0, 0), (0, 1)]

    def test_every_op_name_is_hookable(self, operands):
        # Each declared op can be targeted alone without validation
        # errors (the collectives exercised vary by algorithm).
        for op in SDC_OPS:
            plan = SDCPlan(rate=1.0, ops=(op,), seed=0, max_flips=1)
            assert not plan.is_null

    def test_metrics_counter(self, operands):
        from repro.obs.registry import registry

        a, b = operands
        before = registry().counter_value("sdc.flips", labels={"op": "gemm"})
        plan = SDCPlan(rate=1.0, ops=("gemm",), seed=5, max_flips=2)
        with sdc_injection(plan):
            meshslice_os(a, b, Mesh2D(2, 2), slices=2)
        after = registry().counter_value("sdc.flips", labels={"op": "gemm"})
        assert after == before + 2


class TestSeedConvention:
    def test_same_seed_same_flips_different_seed_differs(self, operands):
        a, b = operands

        def events(seed):
            with sdc_injection(SDCPlan(rate=0.5, seed=seed)) as injector:
                meshslice_os(a, b, Mesh2D(2, 2), slices=2)
            return tuple(injector.events)

        assert events(7) == events(7)
        assert events(7) != events(8)

    def test_ensemble_matches_reseeded_plans(self):
        base = SDCPlan(rate=0.25, seed=100)
        assert base.ensemble(4) == tuple(
            dataclasses.replace(base, seed=100 + i) for i in range(4)
        )
