"""Tests for the SPMD mesh executor and its per-chip programs."""

import numpy as np
import pytest

from repro.mesh import Mesh2D, shard_matrix
from repro.mesh.executor import ChipRuntime, DeadlockError, MeshExecutor
from repro.mesh.spmd_programs import (
    cannon_program,
    meshslice_ls_program,
    meshslice_os_program,
    meshslice_rs_program,
    run_spmd_gemm,
)


class TestExecutorBasics:
    def test_no_communication_program(self):
        mesh = Mesh2D(2, 3)
        executor = MeshExecutor(mesh)

        def program(chip, local):
            return local * 2
            yield  # pragma: no cover - marks this as a generator

        outputs = executor.run(program, {c: 10 for c in mesh.coords()})
        assert all(v == 20 for v in outputs.values())
        assert executor.messages_sent == 0

    def test_ring_shift(self):
        """Each chip receives its right neighbour's value."""
        mesh = Mesh2D(1, 4)
        executor = MeshExecutor(mesh)

        def program(chip, local):
            received = yield chip.send_recv("left", local, tag="t")
            return received

        outputs = executor.run(
            program, {(0, j): j for j in range(4)}
        )
        for j in range(4):
            assert outputs[(0, j)] == (j + 1) % 4

    def test_missing_input_rejected(self):
        executor = MeshExecutor(Mesh2D(2, 2))
        with pytest.raises(ValueError, match="missing"):
            executor.run(lambda chip, local: iter(()), {(0, 0): 1})

    def test_deadlock_detected(self):
        """One chip receives with a tag nobody sends."""
        mesh = Mesh2D(1, 2)
        executor = MeshExecutor(mesh)

        def program(chip, local):
            if chip.coord == (0, 0):
                _ = yield chip.send_recv("right", local, tag="only-one-sender")
            return local

        # Chip (0,1) finishes immediately without sending, so chip
        # (0,0)'s receive can never be satisfied.
        with pytest.raises(DeadlockError):
            executor.run(program, {c: 0 for c in mesh.coords()})

    def test_message_accounting(self):
        mesh = Mesh2D(1, 4)
        executor = MeshExecutor(mesh)

        def program(chip, local):
            _ = yield chip.send_recv("right", local, tag="x")
            return None

        executor.run(
            program, {c: np.zeros(10) for c in mesh.coords()}
        )
        assert executor.messages_sent == 4
        assert executor.bytes_sent == 4 * 10 * 8

    def test_unknown_direction_rejected(self):
        chip = ChipRuntime((0, 0), Mesh2D(2, 2), MeshExecutor(Mesh2D(2, 2)))
        with pytest.raises(ValueError, match="unknown direction"):
            chip.neighbour("diagonal")

    def test_ring_info(self):
        chip = ChipRuntime((2, 1), Mesh2D(4, 3), None)
        assert chip.ring_info("row") == (1, 3)
        assert chip.ring_info("col") == (2, 4)
        with pytest.raises(ValueError):
            chip.ring_info("diag")


class TestExecutorCollectives:
    def test_allgather_through_messages(self, rng):
        mesh = Mesh2D(1, 4)
        executor = MeshExecutor(mesh)
        chunks = {c: rng.standard_normal((2, 2)) for c in mesh.coords()}

        def program(chip, local):
            gathered = yield chip.ring_allgather("row", local, 1, tag="g")
            return gathered

        outputs = executor.run(program, chunks)
        expected = np.concatenate(
            [chunks[(0, j)] for j in range(4)], axis=1
        )
        for out in outputs.values():
            assert np.array_equal(out, expected)
        # P-1 steps per chip.
        assert executor.messages_sent == 4 * 3

    def test_reducescatter_through_messages(self, rng):
        mesh = Mesh2D(3, 1)
        executor = MeshExecutor(mesh)
        partials = {c: rng.standard_normal((6, 2)) for c in mesh.coords()}

        def program(chip, local):
            chunk = yield chip.ring_reducescatter("col", local, 0, tag="r")
            return chunk

        outputs = executor.run(program, partials)
        total = sum(partials.values())
        for i in range(3):
            assert np.allclose(outputs[(i, 0)], total[i * 2:(i + 1) * 2])

    def test_reducescatter_uneven_rejected(self):
        mesh = Mesh2D(2, 1)
        executor = MeshExecutor(mesh)

        def program(chip, local):
            return (yield chip.ring_reducescatter("col", local, 0, tag="r"))

        with pytest.raises(ValueError, match="does not divide"):
            executor.run(
                program, {c: np.zeros((3, 2)) for c in mesh.coords()}
            )


class TestSPMDPrograms:
    """The Figure 5 programs, executed through real message passing."""

    @pytest.mark.parametrize("mesh", [Mesh2D(2, 2), Mesh2D(4, 2), Mesh2D(2, 4)],
                             ids=str)
    @pytest.mark.parametrize("slices", [1, 2, 4])
    def test_os(self, rng, mesh, slices):
        m, n = 24, 24
        k = mesh.size * slices * 6
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c = run_spmd_gemm(meshslice_os_program(slices), a, b, mesh, (m, n))
        assert np.allclose(c, a @ b)

    def test_ls(self, rng):
        mesh = Mesh2D(4, 2)
        m, k = 24, 36
        n = mesh.size * 2 * 6
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((n, k))
        c = run_spmd_gemm(meshslice_ls_program(2, block=2), a, b, mesh, (m, n))
        assert np.allclose(c, a @ b.T)

    def test_rs(self, rng):
        mesh = Mesh2D(2, 4)
        k, n = 36, 24
        m = mesh.size * 2 * 6
        a = rng.standard_normal((k, m))
        b = rng.standard_normal((k, n))
        c = run_spmd_gemm(meshslice_rs_program(2), a, b, mesh, (m, n))
        assert np.allclose(c, a.T @ b)

    def test_cannon(self, rng):
        mesh = Mesh2D(3, 3)
        a = rng.standard_normal((18, 18))
        b = rng.standard_normal((18, 18))
        c = run_spmd_gemm(cannon_program(), a, b, mesh, (18, 18))
        assert np.allclose(c, a @ b)

    def test_spmd_agrees_with_dict_plane(self, rng):
        """The two functional planes (message-passing vs shard-dict)
        must produce identical results."""
        from repro.core import meshslice_os

        mesh = Mesh2D(2, 2)
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        spmd = run_spmd_gemm(meshslice_os_program(2), a, b, mesh, (16, 16))
        dict_plane = meshslice_os(a, b, mesh, slices=2, block=1)
        assert np.allclose(spmd, dict_plane)

    def test_communication_volume_matches_model(self, rng):
        """Executor-counted bytes equal the analytical wire traffic."""
        mesh = Mesh2D(2, 4)
        slices = 2
        m, n = 8, 8
        k = mesh.size * slices * 2
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        executor = MeshExecutor(mesh)
        a_sh = shard_matrix(a, mesh)
        b_sh = shard_matrix(b, mesh)
        inputs = {
            c: (a_sh.shard(c), b_sh.shard(c)) for c in mesh.coords()
        }
        executor.run(meshslice_os_program(slices), inputs)
        # Every chip forwards (P_dir - 1) sub-shards per direction per
        # slice iteration; dtype is float64 here.
        a_bytes = a.nbytes
        b_bytes = b.nbytes
        expected = (
            (mesh.cols - 1) * a_bytes + (mesh.rows - 1) * b_bytes
        )
        assert executor.bytes_sent == pytest.approx(expected)
