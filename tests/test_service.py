"""The tuning service: TuneRequest, PlanStore, warm start, serving."""

import json
import os
import threading

import pytest

from repro.autotuner.search import robust_tune_model, tune_model
from repro.faults import FaultSpec
from repro.hw import TPUV4, get_preset
from repro.mesh import Mesh2D
from repro.models import LLMConfig, get_model
from repro.obs.registry import registry
from repro.service import (
    PlanStore,
    TuneRequest,
    TunerService,
    default_catalog,
    execute,
    warm_tune,
    zipf_mix,
)
from repro.service.store import encode_record

#: Small enough to tune in milliseconds, large enough to be non-trivial.
TINY = LLMConfig(
    name="tiny-fc", num_layers=2, hidden=512, heads=4, head_dim=128,
    seq_len=256,
)

GPT3 = get_model("gpt3-175b")


def tiny_request(**overrides):
    base = dict(model=TINY, batch=4, chips=16, hw=TPUV4)
    base.update(overrides)
    return TuneRequest(**base)


class TestTuneRequest:
    def test_canonical_drops_engine(self):
        a = tiny_request(engine="compiled")
        b = tiny_request()
        assert a.canonical() == b.canonical()
        assert a.cache_key() == b.cache_key()

    def test_canonical_collapses_sdc_rate_without_abft(self):
        assert (
            tiny_request(sdc_rate=0.25).cache_key()
            == tiny_request().cache_key()
        )
        assert (
            tiny_request(abft=True, sdc_rate=0.25).cache_key()
            != tiny_request(abft=True).cache_key()
        )

    def test_canonical_resets_robust_knobs_in_tune_mode(self):
        spec = FaultSpec(stragglers=1, seed=3)
        a = tiny_request(ensemble=99, quantile=0.5, algorithm="summa")
        assert a.cache_key() == tiny_request().cache_key()
        robust = tiny_request(mode="robust", spec=spec, ensemble=99)
        assert robust.cache_key() != tiny_request().cache_key()

    def test_canonical_degraded_derives_chips(self):
        a = TuneRequest(
            model=TINY, batch=4, hw=TPUV4, mode="degraded",
            mesh=Mesh2D(4, 4), dead=(1, 2),
        )
        assert a.canonical().chips == 16

    def test_distinct_configs_distinct_keys(self):
        assert tiny_request().cache_key() != tiny_request(chips=32).cache_key()
        assert tiny_request().cache_key() != tiny_request(batch=8).cache_key()

    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            tiny_request(mode="nope")
        with pytest.raises(ValueError, match="batch"):
            tiny_request(batch=0)
        with pytest.raises(ValueError, match="chips"):
            TuneRequest(model=TINY, batch=4, hw=TPUV4)
        with pytest.raises(ValueError, match="fault spec"):
            tiny_request(mode="robust")
        with pytest.raises(ValueError, match="mesh"):
            tiny_request(mode="degraded")
        with pytest.raises(ValueError, match="outside"):
            TuneRequest(
                model=TINY, batch=4, hw=TPUV4, mode="degraded",
                mesh=Mesh2D(2, 2), dead=(5, 5),
            )

    def test_dict_round_trip(self):
        spec = FaultSpec(stragglers=2, straggler_slowdown=1.5, seed=7)
        request = tiny_request(mode="robust", spec=spec, ensemble=4)
        clone = TuneRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert clone == request
        assert clone.cache_key() == request.cache_key()

    def test_from_dict_accepts_registry_names(self):
        request = TuneRequest.from_dict(
            {"model": "gpt3-175b", "batch": 8, "chips": 16,
             "hw": "tpuv4-sim"}
        )
        assert request.model == GPT3
        assert request.hw == get_preset("tpuv4-sim")

    def test_from_dict_rejects_unknown_fields_and_schema(self):
        good = {"model": "gpt3-175b", "batch": 8, "chips": 16,
                "hw": "tpuv4-sim"}
        with pytest.raises(ValueError, match="unknown"):
            TuneRequest.from_dict({**good, "bogus": 1})
        with pytest.raises(ValueError, match="schema"):
            TuneRequest.from_dict({**good, "schema": 99})

    def test_run_matches_engine_function(self):
        request = tiny_request()
        direct = tune_model(TINY, 4, 16, TPUV4)
        served = request.run()
        assert served.mesh == direct.mesh
        assert served.block_seconds == direct.block_seconds
        assert served.passes == direct.passes


class TestDeprecationShims:
    def test_tune_positional_warns_and_matches(self):
        from repro.autotuner import tune

        with pytest.deprecated_call(match="tune"):
            legacy = tune(TINY, 4, 16, TPUV4)
        assert legacy == tune_model(TINY, 4, 16, TPUV4)

    def test_tune_request_form_does_not_warn(self):
        import warnings

        from repro.autotuner import tune

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = tune(tiny_request())
        assert result.mesh == tune_model(TINY, 4, 16, TPUV4).mesh

    def test_robust_tune_positional_warns(self):
        from repro.autotuner import robust_tune

        spec = FaultSpec(stragglers=1, seed=1)
        with pytest.deprecated_call(match="robust_tune"):
            legacy = robust_tune(TINY, 4, 16, TPUV4, spec, ensemble=2)
        direct = robust_tune_model(TINY, 4, 16, TPUV4, spec, ensemble=2)
        assert legacy.mesh == direct.mesh
        assert legacy.robust_seconds == direct.robust_seconds

    def test_degraded_retune_positional_warns(self):
        from repro.perf.pipeline import (
            degraded_retune,
            degraded_retune_model,
        )

        with pytest.deprecated_call(match="degraded_retune"):
            legacy = degraded_retune(TINY, 4, Mesh2D(4, 4), (0, 0), TPUV4)
        direct = degraded_retune_model(TINY, 4, Mesh2D(4, 4), (0, 0), TPUV4)
        assert legacy == direct

    def test_request_form_rejects_extra_arguments(self):
        from repro.autotuner import tune

        with pytest.raises(TypeError, match="no further"):
            tune(tiny_request(), 4)


class TestPlanStore:
    def test_round_trip_all_modes(self, tmp_path):
        store = PlanStore(str(tmp_path))
        spec = FaultSpec(stragglers=1, seed=5)
        requests = [
            tiny_request(),
            tiny_request(mode="robust", spec=spec, ensemble=2),
            TuneRequest(
                model=TINY, batch=4, hw=TPUV4, mode="degraded",
                mesh=Mesh2D(4, 4), dead=(0, 0),
            ),
        ]
        for request in requests:
            result = execute(request)
            store.save(request, result)
            loaded = store.load(request)
            assert type(loaded) is type(result)
            assert loaded.mesh == result.mesh if hasattr(result, "mesh") \
                else True
        assert len(store) == 3

    def test_tune_record_restores_exact_passes(self, tmp_path):
        store = PlanStore(str(tmp_path))
        request = tiny_request(abft=True, sdc_rate=1e-3)
        result = execute(request)
        store.save(request, result)
        loaded = store.load(request)
        assert loaded.mesh == result.mesh
        assert loaded.block_seconds == result.block_seconds
        assert loaded.passes == result.passes

    def test_robust_record_rebuilds_fault_plans(self, tmp_path):
        store = PlanStore(str(tmp_path))
        spec = FaultSpec(stragglers=1, straggler_slowdown=1.4, seed=9)
        request = tiny_request(mode="robust", spec=spec, ensemble=3)
        result = execute(request)
        store.save(request, result)
        loaded = store.load(request)
        assert loaded.fault_plans == result.fault_plans
        assert loaded.robust_seconds == result.robust_seconds
        assert loaded.per_mesh_robust == result.per_mesh_robust

    def test_save_is_byte_deterministic(self, tmp_path):
        request = tiny_request()
        result = execute(request)
        store_a = PlanStore(str(tmp_path / "a"))
        store_b = PlanStore(str(tmp_path / "b"))
        path_a = store_a.save(request, result)
        path_b = store_b.save(request, execute(request))
        with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_corrupt_record_is_a_miss(self, tmp_path):
        store = PlanStore(str(tmp_path))
        request = tiny_request()
        path = store.save(request, execute(request))
        before = registry().counter_value("service.store.corrupt")
        with open(path, "w") as handle:
            handle.write('{"truncated": ')
        assert store.load(request) is None
        with open(path, "w") as handle:
            handle.write('{"schema": 99, "key": "zz"}')
        assert store.load(request) is None
        assert registry().counter_value("service.store.corrupt") >= before + 2

    def test_key_mismatch_is_a_miss(self, tmp_path):
        store = PlanStore(str(tmp_path))
        request = tiny_request()
        other = tiny_request(chips=32)
        path = store.save(request, execute(request))
        # Re-address another config's record under this key: the
        # embedded request no longer hashes to the filename.
        forged = encode_record(
            request.cache_key(), other.canonical(), execute(other)
        )
        with open(path, "w") as handle:
            handle.write(forged)
        assert store.load(request) is None

    def test_nearest_neighbor_prefers_adjacent_chip_count(self, tmp_path):
        store = PlanStore(str(tmp_path))
        for chips in (8, 16, 64):
            req = tiny_request(chips=chips)
            store.save(req, execute(req))
        neighbor = store.nearest_neighbor(tiny_request(chips=32))
        assert neighbor.request.chips in (16, 64)
        assert neighbor.request.chips == 16  # tie breaks to fewer chips
        # Exact-chips records are not neighbors (they would be hits).
        assert store.nearest_neighbor(tiny_request(chips=16)).request.chips == 8

    def test_nearest_neighbor_requires_matching_knobs(self, tmp_path):
        store = PlanStore(str(tmp_path))
        req = tiny_request(chips=16, abft=True)
        store.save(req, execute(req))
        assert store.nearest_neighbor(tiny_request(chips=32)) is None


class TestPlanStoreEviction:
    def _seed(self, root, chip_counts):
        """Fill an unbounded store with one record per chip count,
        mtimes forced to a known LRU order (oldest first)."""
        store = PlanStore(root)
        requests = []
        for i, chips in enumerate(chip_counts):
            req = tiny_request(chips=chips)
            path = store.save(req, execute(req))
            os.utime(path, (1000 + i, 1000 + i))
            requests.append(req)
        return requests

    def test_max_records_evicts_lru(self, tmp_path):
        requests = self._seed(str(tmp_path), (4, 8, 16))
        before = registry().counter_value("service.store.evicted")
        store = PlanStore(str(tmp_path), max_records=2)
        newest = tiny_request(chips=32)
        store.save(newest, execute(newest))
        assert len(store) == 2
        assert store.load(requests[0]) is None  # oldest out
        assert store.load(requests[1]) is None
        assert store.load(requests[2]) is not None
        assert store.load(newest) is not None
        assert registry().counter_value("service.store.evicted") == before + 2

    def test_load_refreshes_recency(self, tmp_path):
        requests = self._seed(str(tmp_path), (4, 8))
        store = PlanStore(str(tmp_path), max_records=2)
        assert store.load(requests[0]) is not None  # now most recent
        newest = tiny_request(chips=16)
        store.save(newest, execute(newest))
        assert store.load(requests[0]) is not None
        assert store.load(requests[1]) is None  # became the LRU
        assert store.load(newest) is not None

    def test_max_bytes_evicts_lru(self, tmp_path):
        requests = self._seed(str(tmp_path), (4, 8))
        unbounded = PlanStore(str(tmp_path))
        sizes = [
            os.path.getsize(unbounded.path_for(req.cache_key()))
            for req in requests
        ]
        # Room for about two records: the third save pushes the
        # oldest out.
        store = PlanStore(str(tmp_path), max_bytes=2 * max(sizes) + 64)
        newest = tiny_request(chips=16)
        store.save(newest, execute(newest))
        assert store.load(requests[0]) is None  # oldest out
        assert store.load(requests[1]) is not None
        assert store.load(newest) is not None
        assert len(store) == 2

    def test_just_written_record_is_never_evicted(self, tmp_path):
        requests = self._seed(str(tmp_path), (4,))
        store = PlanStore(str(tmp_path), max_bytes=1)
        newest = tiny_request(chips=8)
        store.save(newest, execute(newest))
        assert store.load(requests[0]) is None
        assert store.load(newest) is not None  # protected, though huge
        assert len(store) == 1

    def test_unbounded_store_never_evicts(self, tmp_path):
        self._seed(str(tmp_path), (4, 8, 16))
        assert len(PlanStore(str(tmp_path))) == 3

    @pytest.mark.parametrize("kwargs", [
        {"max_records": 0},
        {"max_bytes": 0},
        {"max_records": -5},
    ])
    def test_invalid_bounds_rejected(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            PlanStore(str(tmp_path), **kwargs)


class TestWarmTune:
    @pytest.mark.parametrize("chips", [16, 32, 64])
    def test_warm_equals_cold_bitwise(self, chips):
        cold = tune_model(TINY, 4, chips, TPUV4)
        for neighbor in (None, Mesh2D(2, 8), Mesh2D(4, 4), Mesh2D(8, 2)):
            warm = warm_tune(TINY, 4, chips, TPUV4, neighbor_mesh=neighbor)
            assert warm.mesh == cold.mesh
            assert warm.block_seconds == cold.block_seconds
            assert warm.passes == cold.passes

    def test_warm_per_mesh_is_subset_of_cold(self):
        cold = tune_model(TINY, 4, 64, TPUV4)
        warm = warm_tune(TINY, 4, 64, TPUV4, neighbor_mesh=cold.mesh)
        for shape, seconds in warm.per_mesh_seconds.items():
            assert cold.per_mesh_seconds[shape] == seconds

    def test_good_seed_prunes(self):
        cold = tune_model(TINY, 4, 64, TPUV4)
        before = registry().counter_value("service.warmstart.pass_prunes")
        warm_tune(TINY, 4, 64, TPUV4, neighbor_mesh=cold.mesh)
        assert (
            registry().counter_value("service.warmstart.pass_prunes")
            > before
        )


class TestTunerService:
    def test_three_tiers(self, tmp_path):
        request = tiny_request()
        with TunerService(str(tmp_path), workers=2) as svc:
            first = svc.serve(request)
            second = svc.serve(request)  # memory
        assert first is second
        with TunerService(str(tmp_path), workers=2) as svc:
            third = svc.serve(request)  # disk
        assert third.mesh == first.mesh
        assert third.block_seconds == first.block_seconds

    def test_memory_only_service(self):
        with TunerService(None, workers=1) as svc:
            result = svc.serve(tiny_request())
        assert result.mesh == tune_model(TINY, 4, 16, TPUV4).mesh

    def test_warm_start_from_neighbor(self, tmp_path):
        with TunerService(str(tmp_path), workers=1) as svc:
            svc.serve(tiny_request(chips=16))
            before = registry().counter_value("service.warmstart.seeded")
            warm = svc.serve(tiny_request(chips=32))
        assert registry().counter_value("service.warmstart.seeded") == \
            before + 1
        cold = tune_model(TINY, 4, 32, TPUV4)
        assert warm.mesh == cold.mesh
        assert warm.block_seconds == cold.block_seconds
        assert warm.passes == cold.passes

    def test_concurrent_identical_requests_coalesce(self, tmp_path):
        """Two threads, same canonical config: one search, one write."""
        request = tiny_request(chips=64)
        alias = tiny_request(chips=64, engine="compiled")  # same canonical
        writes_before = registry().counter_value("service.store.writes")
        runs_before = registry().counter_value(
            "tuner.runs", labels={"model": TINY.name}
        )
        results = {}
        barrier = threading.Barrier(2)
        with TunerService(str(tmp_path), workers=2) as svc:
            def hit(name, req):
                barrier.wait()
                results[name] = svc.serve(req)

            threads = [
                threading.Thread(target=hit, args=("a", request)),
                threading.Thread(target=hit, args=("b", alias)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert results["a"] is results["b"] or results["a"] == results["b"]
        assert (
            registry().counter_value("service.store.writes")
            == writes_before + 1
        )
        assert (
            registry().counter_value(
                "tuner.runs", labels={"model": TINY.name}
            )
            == runs_before + 1
        )
        store = PlanStore(str(tmp_path))
        assert len(store) == 1

    def test_stats_shape(self, tmp_path):
        with TunerService(str(tmp_path), workers=1) as svc:
            svc.serve(tiny_request())
            svc.serve(tiny_request())
            stats = svc.stats()
        for key in (
            "requests", "served_from_memory", "store_hits",
            "store_hit_rate", "warmstart_prune_ratio",
            "latency_p50_ms", "latency_p95_ms", "queue_depth",
        ):
            assert key in stats
        assert stats["queue_depth"] == 0.0
        assert stats["latency_p95_ms"] >= stats["latency_p50_ms"] >= 0.0

    def test_closed_service_rejects_submissions(self):
        svc = TunerService(None, workers=1)
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(tiny_request())

    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            TunerService(None, workers=0)


class TestLoadGen:
    def test_zipf_mix_is_seeded(self):
        catalog = default_catalog(
            models=(TINY,), chip_counts=(16, 32), batches=(4,)
        )
        a = zipf_mix(catalog, 50, seed=3)
        b = zipf_mix(catalog, 50, seed=3)
        assert a == b
        assert zipf_mix(catalog, 50, seed=4) != a
        # Rank 0 dominates a zipf draw.
        top = sum(1 for r in a if r == catalog[0])
        assert top >= len(a) // 3

    def test_zipf_mix_validation(self):
        with pytest.raises(ValueError, match="empty"):
            zipf_mix([], 5)
        with pytest.raises(ValueError, match="queries"):
            zipf_mix([tiny_request()], 0)

    def test_run_load_reports(self, tmp_path):
        from repro.service import run_load

        catalog = default_catalog(
            models=(TINY,), chip_counts=(16, 32), batches=(4,)
        )
        mix = zipf_mix(catalog, 12, seed=0)
        report = run_load(mix, str(tmp_path), workers=2)
        assert report.queries == 12
        assert report.unique == 2
        assert report.throughput_qps > 0
        assert report.cold_seconds_per_query > 0
        assert report.speedup > 0
        assert 0.0 <= report.stats["store_hit_rate"] <= 1.0
