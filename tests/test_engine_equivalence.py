"""Bit-exact equivalence of every engine vs the seed engine.

The event-driven engine (ready heap, per-resource wait queues,
incremental shared-demand totals) must schedule *exactly* like the seed
step-loop engine kept in ``tests/reference_engine.py`` — same spans,
same start/end floats to the last bit, same ordering. The compiled
engine (motif detection, steady-state composition, numpy
struct-of-arrays replay) must match both, composed or not: every case
runs it twice, once with its motif hints (the composing path where the
program repeats) and once with hints suppressed (the pure
struct-of-arrays replay path). The corpus covers the program families
the evaluation actually simulates:

* MeshSlice with a deep slice count (S = 16) — long dependency chains
  with software pipelining across core and both link directions;
* SUMMA fully unrolled — broadcast/reduce pipelines per iteration;
* Cannon — SendRecv shifts with core-blocking fractions;
* a shared-NIC logical-mesh program — both ring directions contending
  for one NIC *and* for HBM bandwidth (the fluid-rate code paths);
* a no-overlap cloud preset — collectives claiming the core;
* randomized activity DAGs stressing wait queues and rate changes.
"""

from __future__ import annotations

import random

from reference_engine import ReferenceEngine

from repro.algorithms import GeMMConfig, get_algorithm
from repro.core import Dataflow, GeMMShape
from repro.hw import get_preset
from repro.mesh import Mesh2D
from repro.sim.compiled import CompiledEngine
from repro.sim.engine import Activity, Engine

TPUV4 = get_preset("tpuv4-sim")
LOGICAL = get_preset("gpu-logical-mesh")
CLOUD = get_preset("tpuv4-cloud-4x4")


def _assert_same_spans(spans, ref_spans, tag):
    assert len(spans) == len(ref_spans), tag
    for new, ref in zip(spans, ref_spans):
        assert new.aid == ref.aid, (tag, new, ref)
        assert new.label == ref.label, (tag, new, ref)
        assert new.kind == ref.kind, (tag, new, ref)
        assert new.exclusive == ref.exclusive, (tag, new, ref)
        # Exact float equality: the engines must perform the same
        # floating-point operations in the same order.
        assert new.start == ref.start, (tag, new, ref)
        assert new.end == ref.end, (tag, new, ref)


def assert_bit_identical(program, tag):
    """Every engine must emit the same Span list, floats compared exactly.

    The compiled engine runs twice: with the program's motif hints
    (composition active where the structure repeats) and with hints
    suppressed (``motifs=()``, forcing the uncomposed numpy replay).
    """
    capacities = program.shared_capacities
    ref_spans = ReferenceEngine(program.activities, capacities).run()
    _assert_same_spans(
        Engine(program.activities, capacities).run(), ref_spans, (tag, "heap")
    )
    motifs = program.meta.get("motifs")
    _assert_same_spans(
        CompiledEngine(program.activities, capacities, motifs=motifs).run(),
        ref_spans,
        (tag, "compiled"),
    )
    _assert_same_spans(
        CompiledEngine(program.activities, capacities, motifs=()).run(),
        ref_spans,
        (tag, "compiled-no-hints"),
    )


SHAPE = GeMMShape(4096, 4096, 8192)


def test_meshslice_deep_slicing():
    cfg = GeMMConfig(shape=SHAPE, mesh=Mesh2D(4, 4), dataflow=Dataflow.OS, slices=16)
    program = get_algorithm("meshslice").build_program(cfg, TPUV4)
    assert_bit_identical(program, "meshslice-s16")


def test_meshslice_transposed_ls():
    cfg = GeMMConfig(
        shape=SHAPE, mesh=Mesh2D(2, 8), dataflow=Dataflow.LS,
        slices=8, transposed=True,
    )
    program = get_algorithm("meshslice").build_program(cfg, TPUV4)
    assert_bit_identical(program, "meshslice-ls-t")


def test_summa_unrolled():
    cfg = GeMMConfig(shape=SHAPE, mesh=Mesh2D(4, 4), dataflow=Dataflow.OS, slices=8)
    program = get_algorithm("summa").build_program(cfg, TPUV4)
    assert_bit_identical(program, "summa-unrolled")


def test_cannon():
    cfg = GeMMConfig(shape=SHAPE, mesh=Mesh2D(4, 4), dataflow=Dataflow.OS, slices=1)
    program = get_algorithm("cannon").build_program(cfg, TPUV4)
    assert_bit_identical(program, "cannon")


def test_wang():
    cfg = GeMMConfig(shape=SHAPE, mesh=Mesh2D(2, 8), dataflow=Dataflow.RS, slices=4)
    program = get_algorithm("wang").build_program(cfg, TPUV4)
    assert_bit_identical(program, "wang")


def test_shared_nic_logical_mesh_with_hbm_contention():
    """Both fluid-shared resources (NIC and HBM) active at once."""
    assert LOGICAL.has_shared_nic
    cfg = GeMMConfig(shape=SHAPE, mesh=Mesh2D(4, 4), dataflow=Dataflow.OS, slices=8)
    program = get_algorithm("meshslice").build_program(cfg, LOGICAL)
    # The corpus must actually exercise contention: some activity has to
    # carry demand on both shared resources.
    assert any(len(a.shared) >= 2 for a in program.activities)
    assert_bit_identical(program, "meshslice-logical-mesh")


def test_no_overlap_cloud_preset():
    """Collectives claiming the core (overlap_collectives=False)."""
    assert not CLOUD.overlap_collectives
    cfg = GeMMConfig(shape=SHAPE, mesh=Mesh2D(4, 4), dataflow=Dataflow.OS, slices=4)
    program = get_algorithm("meshslice").build_program(cfg, CLOUD)
    assert_bit_identical(program, "meshslice-no-overlap")


def test_step_granularity_collectives():
    """Per-ring-step collectives produce long same-link chains."""
    from repro.sim.program import ProgramBuilder
    from repro.sim.engine import LINK_H, LINK_V

    builder = ProgramBuilder(TPUV4)
    a = builder.allgather("ag_h", 4, 1e6, LINK_H, granularity="step")
    b = builder.allgather("ag_v", 8, 2e6, LINK_V, granularity="step")
    g = builder.gemm("partial", 1024, 1024, 1024, deps=[a, b])
    builder.reducescatter("rds", 4, 1e6, LINK_H, deps=[g], granularity="step")
    assert_bit_identical(builder.build(), "step-granularity")


class _FuzzCase:
    RESOURCES = ("core", "link_h", "link_v")

    @classmethod
    def build(cls, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 48)
        activities = []
        for aid in range(n):
            deps = ()
            if aid:
                deps = tuple(sorted(rng.sample(range(aid), rng.randint(0, min(3, aid)))))
            exclusive = tuple(rng.sample(cls.RESOURCES, rng.randint(0, 2)))
            shared = {}
            if rng.random() < 0.7:
                shared["hbm"] = rng.choice([0.0, 0.5, 1.0, 2.0, 5.0])
            if rng.random() < 0.3:
                shared["nic"] = rng.choice([0.5, 1.5])
            activities.append(
                Activity(
                    aid=aid,
                    label=f"a{aid}",
                    kind="compute",
                    duration=rng.choice([0.0, 1e-9, 0.25, 1.0, 3.7]),
                    exclusive=exclusive,
                    shared=shared,
                    deps=deps,
                )
            )
        return activities


def test_randomized_dags_bit_identical():
    capacities = {"hbm": 1.0, "nic": 1.0}
    for seed in range(120):
        activities = _FuzzCase.build(seed)
        ref_spans = ReferenceEngine(activities, capacities).run()
        ref_key = [(s.aid, s.start, s.end) for s in ref_spans]
        new_spans = Engine(activities, capacities).run()
        assert [
            (s.aid, s.start, s.end) for s in new_spans
        ] == ref_key, f"fuzz seed {seed}"
        compiled_spans = CompiledEngine(activities, capacities).run()
        assert [
            (s.aid, s.start, s.end) for s in compiled_spans
        ] == ref_key, f"fuzz seed {seed} (compiled)"


def test_randomized_repeated_fragments_bit_identical():
    """Random blocks stacked into deep programs: the composition path.

    Each seed builds a random fragment, stacks it ``copies`` times with
    :func:`repeat_program` (which emits a trusted layer-level motif),
    and requires all three engines to agree bit-for-bit. Deep stacks
    must actually compose — otherwise this only re-tests the replay.
    """
    from repro.sim.program import Program, repeat_program

    capacities = {"hbm": 1.0, "nic": 1.0}
    composed_cases = 0
    for seed in range(40):
        rng = random.Random(1000 + seed)
        block = Program(
            activities=_FuzzCase.build(seed),
            shared_capacities=capacities,
        )
        copies = rng.choice([2, 3, 8, 24])
        stacked = repeat_program(block, copies)
        ref_spans = ReferenceEngine(
            stacked.activities, stacked.shared_capacities
        ).run()
        _assert_same_spans(
            Engine(stacked.activities, stacked.shared_capacities).run(),
            ref_spans,
            (f"stack seed {seed}", "heap"),
        )
        compiled = CompiledEngine(
            stacked.activities,
            stacked.shared_capacities,
            motifs=stacked.meta.get("motifs"),
        )
        _assert_same_spans(
            compiled.run(), ref_spans, (f"stack seed {seed}", "compiled")
        )
        if compiled.stats.instances_composed:
            composed_cases += 1
    # The steady-state composer must have fired on a healthy share of
    # the deep stacks; all-fallback would silently gut the test.
    assert composed_cases >= 10


def test_deep_algorithm_stacks_compose():
    """Layered GeMM stacks: composition fires and stays bit-identical."""
    from repro.sim.program import repeat_program

    for alg_name, cfg in [
        (
            "meshslice",
            GeMMConfig(
                shape=SHAPE, mesh=Mesh2D(4, 4),
                dataflow=Dataflow.OS, slices=8,
            ),
        ),
        (
            "summa",
            GeMMConfig(
                shape=SHAPE, mesh=Mesh2D(4, 4),
                dataflow=Dataflow.OS, slices=4,
            ),
        ),
        (
            "wang",
            GeMMConfig(
                shape=SHAPE, mesh=Mesh2D(2, 8),
                dataflow=Dataflow.RS, slices=4,
            ),
        ),
    ]:
        block = get_algorithm(alg_name).build_program(cfg, TPUV4)
        stacked = repeat_program(block, 24)
        ref_spans = ReferenceEngine(
            stacked.activities, stacked.shared_capacities
        ).run()
        compiled = CompiledEngine(
            stacked.activities,
            stacked.shared_capacities,
            motifs=stacked.meta.get("motifs"),
        )
        _assert_same_spans(compiled.run(), ref_spans, (alg_name, "stack24"))
        stats = compiled.stats
        assert stats.fallback is None, (alg_name, stats.fallback)
        assert stats.instances_composed > 0, alg_name
        assert stats.composed_fraction > 0.5, (
            alg_name, stats.composed_fraction,
        )
